"""reprolint core: findings, file context, suppressions, and the linter.

The engine is deliberately self-contained (stdlib ``ast`` + ``tokenize``
only) so the invariant gate runs in any environment the tests run in —
no third-party analyzer needed for the repo-specific rules.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from pathlib import Path
from typing import Iterable, Iterator

#: pragma grammar: ``disable=R1,R2 -- justification`` (same line) or
#: ``disable-next=R1 -- justification`` (next line), after a
#: ``reprolint:`` comment marker
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-next)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+?)\s*(?:--\s*(?P<why>.+?)\s*)?$")

#: fallback ReproError hierarchy, used when no ``errors.py`` is in the scan
#: (fixture snippets); the real run parses the hierarchy from source so new
#: subclasses are picked up automatically
_DEFAULT_ERRORS = frozenset({
    "ReproError", "ConfigError", "StorageError", "PageOverflowError",
    "PageNotFoundError", "SlotNotFoundError", "DeviceError",
    "DeviceCrashError", "RecoveryError", "BufferError_", "KeyCodecError",
    "TransactionError", "TransactionStateError", "WriteConflictError",
    "TableError", "TupleNotFoundError", "IndexError_",
    "UniqueViolationError", "CatalogError", "WorkloadError",
})

#: fallback RecordType members (paper §3.2/§4.1)
_DEFAULT_RECORD_TYPES = (
    "REGULAR", "REPLACEMENT", "ANTI", "TOMBSTONE", "REGULAR_SET")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str        #: rule id, e.g. ``"R1"`` (``"S1"`` for pragma hygiene)
    name: str        #: rule slug, e.g. ``"determinism"``
    path: str        #: file the finding is in
    line: int        #: 1-based line
    col: int         #: 0-based column
    message: str     #: what is wrong
    hint: str = ""   #: how to fix it

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"[{self.name}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule, "name": self.name, "path": self.path,
            "line": self.line, "col": self.col, "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# reprolint: disable[...]`` pragma."""

    effective_line: int        #: line whose findings it suppresses
    comment_line: int          #: line the pragma itself is on
    rules: tuple[str, ...]     #: normalised rule tokens (ids/slugs/"all")
    justification: str         #: text after ``--`` (may be empty)

    def covers(self, finding: Finding) -> bool:
        if finding.line != self.effective_line:
            return False
        for token in self.rules:
            if token == "all" or token == finding.rule.lower() \
                    or token == finding.name.lower():
                return True
        return False


class Project:
    """Cross-file knowledge the rules share: the ``ReproError`` hierarchy
    and the ``RecordType`` member list, parsed from the scanned tree."""

    def __init__(self, *, repro_errors: frozenset[str] = _DEFAULT_ERRORS,
                 record_types: tuple[str, ...] = _DEFAULT_RECORD_TYPES
                 ) -> None:
        self.repro_errors = repro_errors
        self.record_types = record_types

    @classmethod
    def load(cls, root: Path) -> "Project":
        """Parse project knowledge from a source root (best effort: any
        piece that cannot be found falls back to the built-in default)."""
        errors = cls._load_errors(root)
        record_types = cls._load_record_types(root)
        return cls(repro_errors=errors or _DEFAULT_ERRORS,
                   record_types=record_types or _DEFAULT_RECORD_TYPES)

    @staticmethod
    def _parse(path: Path) -> ast.Module | None:
        try:
            return ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return None

    @classmethod
    def _load_errors(cls, root: Path) -> frozenset[str] | None:
        for path in sorted(root.rglob("errors.py"),
                           key=lambda p: len(p.parts)):
            tree = cls._parse(path)
            if tree is None:
                continue
            bases: dict[str, list[str]] = {}
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    bases[node.name] = [b.id for b in node.bases
                                        if isinstance(b, ast.Name)]
            if "ReproError" not in bases:
                continue
            known = {"ReproError"}
            grew = True
            while grew:
                grew = False
                for name, parents in bases.items():
                    if name not in known and any(p in known for p in parents):
                        known.add(name)
                        grew = True
            return frozenset(known)
        return None

    @classmethod
    def _load_record_types(cls, root: Path) -> tuple[str, ...] | None:
        for path in sorted(root.rglob("records.py"),
                           key=lambda p: len(p.parts)):
            tree = cls._parse(path)
            if tree is None:
                continue
            for node in tree.body:
                if isinstance(node, ast.ClassDef) \
                        and node.name == "RecordType":
                    members = [stmt.targets[0].id for stmt in node.body
                               if isinstance(stmt, ast.Assign)
                               and len(stmt.targets) == 1
                               and isinstance(stmt.targets[0], ast.Name)]
                    if members:
                        return tuple(members)
        return None


class FileContext:
    """Everything a rule needs about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 project: Project) -> None:
        self.path = path
        #: posix-normalised path, what the module-scoping helpers match on
        self.posix_path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.project = project
        #: local alias -> fully qualified imported name
        #: (``import os`` -> {"os": "os"}; ``from time import time as t``
        #: -> {"t": "time.time"})
        self.imports: dict[str, str] = {}
        self._collect_imports()

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name if alias.asname
                                           else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.level:      # relative import: stays project-internal
                    continue
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{module}.{alias.name}"

    def qualname(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name, translating the
        root through this file's imports.  ``None`` for non-name shapes."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def in_module(self, *suffixes: str) -> bool:
        """Does this file's path end with any of the given posix suffixes?"""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class: one invariant, one visitor pass, zero or more findings."""

    id: str = ""
    name: str = ""
    description: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: str | None = None) -> Finding:
        return Finding(rule=self.id, name=self.name, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message,
                       hint=self.hint if hint is None else hint)


class ProgramRule(Rule):
    """A whole-program rule: sees every file of the run at once.

    Per-file rules (:class:`Rule`) get one :class:`FileContext`; program
    rules run *after* the per-file pass over the full list of parsed
    contexts, so they can build cross-module structures — the call graph,
    lock summaries — and report findings anywhere in the tree.  The
    ``shared`` mapping is one dict per lint run: rules stash expensive
    artifacts there (``shared["program"]`` holds the call-graph model) so
    three rules don't build the same fixpoint three times.

    Findings are attributed to real (path, line) locations and respond to
    the same suppression pragmas as per-file findings.
    """

    def check(self, ctx: FileContext) -> list[Finding]:
        return []

    def check_program(self, files: list[FileContext],
                      shared: dict[str, object]) -> list[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, node: ast.AST, message: str,
                   hint: str | None = None) -> Finding:
        return Finding(rule=self.id, name=self.name, path=path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message,
                       hint=self.hint if hint is None else hint)


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract ``# reprolint: disable[...]`` pragmas via the tokenizer (so
    strings that merely *contain* pragma-looking text are never matched)."""
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except tokenize.TokenError:
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        effective = line + 1 if match.group("kind") == "disable-next" else line
        rules = tuple(part.strip().lower()
                      for part in match.group("rules").split(",")
                      if part.strip())
        suppressions.append(Suppression(
            effective_line=effective, comment_line=line, rules=rules,
            justification=(match.group("why") or "").strip()))
    return suppressions


class _FileState:
    """Per-file bookkeeping the program pass and S2 staleness need."""

    __slots__ = ("ctx", "suppressions", "used")

    def __init__(self, ctx: FileContext,
                 suppressions: list[Suppression]) -> None:
        self.ctx = ctx
        self.suppressions = suppressions
        #: indices of suppressions that covered at least one raw finding
        self.used: set[int] = set()


class Linter:
    """Run a rule set over files/sources; apply suppressions; count both.

    Per-file rules run one file at a time; :class:`ProgramRule` instances
    run once over the whole file set at the end of :meth:`lint_paths`.
    Under ``--strict`` a suppression pragma that covered no finding in the
    entire run (per-file *and* program rules) is itself reported as stale
    (S2) — provided every rule it names was enabled in the run, so a
    ``--select``/``--ignore`` subset never misreports staleness.
    """

    def __init__(self, rules: Iterable[Rule], project: Project | None = None,
                 *, strict: bool = False) -> None:
        self.rules = [r for r in rules if not isinstance(r, ProgramRule)]
        self.program_rules = [r for r in rules
                              if isinstance(r, ProgramRule)]
        self.project = project if project is not None else Project()
        self.strict = strict
        self.files_checked = 0
        self.suppressed_count = 0
        self._known_tokens = {"all"}
        for rule in self.rules + list(self.program_rules):
            self._known_tokens.add(rule.id.lower())
            self._known_tokens.add(rule.name.lower())

    # ------------------------------------------------------------------ API

    def lint_source(self, source: str, path: str = "<source>"
                    ) -> list[Finding]:
        """Lint one in-memory source with the per-file rules only.

        Program rules need the whole file set and run in
        :meth:`lint_paths`; staleness (S2) here is judged against the
        per-file rule set alone.
        """
        findings, state = self._lint_collect(source, path)
        if state is not None:
            enabled = self._enabled_tokens(include_program=False)
            findings.extend(self._stale_pragmas(state, enabled))
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings

    def lint_file(self, path: Path) -> list[Finding]:
        self.files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return [Finding(rule="E0", name="io", path=str(path), line=1,
                            col=0, message=f"cannot read file: {exc}")]
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Iterable[Path]) -> list[Finding]:
        findings: list[Finding] = []
        states: list[_FileState] = []
        for path in paths:
            for file in sorted(iter_python_files(path)):
                self.files_checked += 1
                try:
                    source = file.read_text(encoding="utf-8")
                except OSError as exc:
                    findings.append(Finding(
                        rule="E0", name="io", path=str(file), line=1,
                        col=0, message=f"cannot read file: {exc}"))
                    continue
                file_findings, state = self._lint_collect(source, str(file))
                findings.extend(file_findings)
                if state is not None:
                    states.append(state)
        findings.extend(self._program_pass(states))
        enabled = self._enabled_tokens(include_program=True)
        for state in states:
            findings.extend(self._stale_pragmas(state, enabled))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # ------------------------------------------------------------- internal

    def _lint_collect(self, source: str, path: str
                      ) -> tuple[list[Finding], _FileState | None]:
        """Per-file rules + suppression application; no S2 judgement yet
        (a program rule may still use a pragma the per-file pass didn't)."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [Finding(rule="E0", name="syntax", path=path,
                            line=exc.lineno or 1, col=exc.offset or 0,
                            message=f"cannot parse file: {exc.msg}")], None
        ctx = FileContext(path, source, tree, self.project)
        state = _FileState(ctx, parse_suppressions(source))
        raw: list[Finding] = []
        for rule in self.rules:
            raw.extend(rule.check(ctx))
        findings = []
        for finding in raw:
            if self._apply_suppressions(state, finding):
                continue
            findings.append(finding)
        findings.extend(self._pragma_hygiene(path, state.suppressions))
        return findings, state

    def _program_pass(self, states: list[_FileState]) -> list[Finding]:
        if not self.program_rules or not states:
            return []
        files = [state.ctx for state in states]
        by_path = {state.ctx.path: state for state in states}
        shared: dict[str, object] = {}
        findings: list[Finding] = []
        for rule in self.program_rules:
            for finding in rule.check_program(files, shared):
                state = by_path.get(finding.path)
                if state is not None \
                        and self._apply_suppressions(state, finding):
                    continue
                findings.append(finding)
        return findings

    def _apply_suppressions(self, state: _FileState,
                            finding: Finding) -> bool:
        """Mark every covering suppression used; True when suppressed."""
        covered = False
        for index, sup in enumerate(state.suppressions):
            if sup.covers(finding):
                state.used.add(index)
                covered = True
        if covered:
            self.suppressed_count += 1
        return covered

    def _enabled_tokens(self, *, include_program: bool) -> set[str]:
        rules: list[Rule] = list(self.rules)
        if include_program:
            rules.extend(self.program_rules)
        enabled: set[str] = set()
        for rule in rules:
            enabled.add(rule.id.lower())
            enabled.add(rule.name.lower())
        return enabled

    def _stale_pragmas(self, state: _FileState,
                       enabled: set[str]) -> list[Finding]:
        """S2 findings: a pragma that suppressed nothing is stale.

        Only judged under ``--strict``, and only when every rule the
        pragma names ran (an ``all`` pragma or one naming a deselected
        rule cannot be judged and is skipped)."""
        if not self.strict:
            return []
        findings: list[Finding] = []
        for index, sup in enumerate(state.suppressions):
            if index in state.used:
                continue
            if any(token == "all" or token not in enabled
                   for token in sup.rules):
                continue
            findings.append(Finding(
                rule="S2", name="stale-pragma", path=state.ctx.path,
                line=sup.comment_line, col=0,
                message=f"suppression for "
                        f"{', '.join(sup.rules)} matches no finding — "
                        f"the pragma is stale",
                hint="delete the pragma (the code it excused is gone or "
                     "now clean)"))
        return findings

    def _pragma_hygiene(self, path: str,
                        suppressions: list[Suppression]) -> list[Finding]:
        """S1 findings: unknown rule tokens always; missing justification
        only under ``--strict`` (the repo convention requires one)."""
        findings: list[Finding] = []
        for sup in suppressions:
            unknown = [t for t in sup.rules if t not in self._known_tokens]
            if unknown:
                findings.append(Finding(
                    rule="S1", name="pragma", path=path,
                    line=sup.comment_line, col=0,
                    message=f"suppression names unknown rule(s): "
                            f"{', '.join(unknown)}",
                    hint="use a rule id (R1..) or slug from --list-rules"))
            if self.strict and not sup.justification:
                findings.append(Finding(
                    rule="S1", name="pragma", path=path,
                    line=sup.comment_line, col=0,
                    message="suppression has no justification",
                    hint="append ' -- <one-line reason>' to the pragma"))
        return findings


def iter_python_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for file in path.rglob("*.py"):
        if "__pycache__" not in file.parts:
            yield file
