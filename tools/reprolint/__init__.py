"""reprolint — AST-based engine-invariant checker for the MV-PBT repro.

The test suite can only *sample* the engine's global invariants; reprolint
checks them structurally, on every line, before a fault-injection sweep has
to find the violation the hard way:

=====  ==================  ====================================================
rule   name                invariant
=====  ==================  ====================================================
R1     determinism         no wall-clock / unseeded randomness in engine code;
                           simulated time comes from ``repro.sim.clock``
R2     record-exhaustive   every if/elif or ``match`` dispatch on
                           ``RecordType`` covers all members or ends in an
                           explicit raise
R3     immutability        persisted partitions/runs are never mutated outside
                           their defining modules and builders
R4     storage-bypass      no direct ``open()``/``os.*``/``mmap`` I/O — every
                           byte flows through SimulatedDevice/PageFile so
                           DeviceStats and the Fig. 8 cost model stay truthful
R5     error-discipline    every ``raise`` constructs a ``ReproError``
                           subclass; no bare/swallowed excepts in durability
                           paths
R6     typing              every def is fully annotated and no annotation
                           uses a bare generic (``tuple``/``list``/...) — the
                           locally-runnable proxy for the ``mypy --strict``
                           CI gate
R7     time-discipline     no ``time``/``datetime`` imports; tracing and
                           metrics objects are constructed only in
                           ``repro/obs/`` and ``repro/sim/``
R8     concurrency-        raw threading primitives confined to
       confinement         ``repro/serve/`` and the synchronized txn
                           components
R9     lock-order          whole-program §15.2 rank verification: ranks
                           strictly ascend along every static acquisition
                           path; raw mutexes carry ``lock-rank=`` annotations;
                           calls under a lock are checked against transitive
                           may-acquire summaries
R10    slot-confinement    engine state reachable from ``repro/serve/`` is
                           accessed only under the FairScheduler engine slot
                           (confinement inherited through always-in-slot
                           helpers)
R11    2pc-protocol        every static path through the shard layer's 2PC
                           functions follows the decision protocol
                           (P -> D -> M -> F -> finish), ops only callable
                           from the coordinator layer
=====  ==================  ====================================================

R1-R8 are per-file visitor rules; R9-R11 are :class:`ProgramRule`
passes over a cross-module call graph with per-function lock summaries
(``callgraph.py`` + ``summaries.py``, DESIGN.md §17).

Findings can be suppressed per line with a justified pragma::

    x = time.time()  # reprolint: disable=R1 -- host wall-clock for report header

``--strict`` additionally rejects suppressions without a justification,
and reports stale pragmas (S2) that no longer suppress anything.
"""

from __future__ import annotations

from .engine import FileContext, Finding, Linter, Project, Rule
from .rules import ALL_RULES, rule_by_id

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Finding",
    "Linter",
    "Project",
    "Rule",
    "rule_by_id",
]
