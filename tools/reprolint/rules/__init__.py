"""Rule registry.

Each rule module defines one ``Rule`` subclass; ``ALL_RULES`` instantiates
them in id order.  Adding a rule = add a module, list it here, document it
in DESIGN.md §12, and give it good/bad fixtures in
``tests/unit/test_reprolint.py``.
"""

from __future__ import annotations

from ..engine import Rule
from .r1_determinism import DeterminismRule
from .r2_exhaustive import RecordExhaustiveRule
from .r3_immutability import ImmutabilityRule
from .r4_storage import StorageBypassRule
from .r5_errors import ErrorDisciplineRule
from .r6_typing import TypingRule
from .r7_time import TimeDisciplineRule
from .r8_concurrency import ConcurrencyConfinementRule
from .r9_lock_order import LockOrderRule
from .r10_confinement import SlotConfinementRule
from .r11_protocol import ProtocolExhaustivenessRule

ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    RecordExhaustiveRule,
    ImmutabilityRule,
    StorageBypassRule,
    ErrorDisciplineRule,
    TypingRule,
    TimeDisciplineRule,
    ConcurrencyConfinementRule,
    LockOrderRule,
    SlotConfinementRule,
    ProtocolExhaustivenessRule,
)


def rule_by_id(token: str) -> type[Rule]:
    token = token.strip().lower()
    for rule in ALL_RULES:
        if token in (rule.id.lower(), rule.name.lower()):
            return rule
    raise KeyError(token)  # reprolint: disable=R5 -- reprolint is a standalone stdlib-only tool; it must not import repro.errors


__all__ = ["ALL_RULES", "rule_by_id", "DeterminismRule",
           "RecordExhaustiveRule", "ImmutabilityRule", "StorageBypassRule",
           "ErrorDisciplineRule", "TypingRule", "TimeDisciplineRule",
           "ConcurrencyConfinementRule", "LockOrderRule",
           "SlotConfinementRule", "ProtocolExhaustivenessRule"]
