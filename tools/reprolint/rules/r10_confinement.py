"""R10 — engine-state slot confinement, verified interprocedurally.

The serve layer's concurrency argument (DESIGN.md §15) is that the
single-caller engine — ``Database`` / ``ShardedDatabase`` / the
``DurabilityController`` WAL path — is only ever driven while holding
the ``FairScheduler`` engine slot.  R8 approximates this at the import
level (no ``threading`` outside the allowlist); this rule supersedes
that heuristic inside ``repro/serve/`` by checking *accesses*:

* a **call** through an engine root (``self._db.…(…)``,
  ``router.shards[k].…(…)``) outside the slot;
* a **store** into engine state outside the slot;
* a **deep read** (attribute depth ≥ 2 below a root, e.g.
  ``self.db.durability.wal.appends``) outside the slot — depth-1 reads
  (``db.txn``, ``db.obs``) are immutable component bindings and allowed,
  anything deeper is reaching into unlocked engine internals.

Engine roots are found by type inference (attributes/params/locals whose
inferred class is an engine type, including through ``list[Database]``
shard vectors), by the documented root names (``db``/``_db``/
``router``/``_router``), and by explicit ``# reprolint:
confined=engine`` attribute annotations where inference needs help.

Confinement is *inherited interprocedurally*: a helper whose every
resolved in-program call site holds the slot (directly or via another
confined caller) is analyzed as slot-held, so private ``_rows_for``-style
helpers don't need pragmas.  Entry points (no in-program callers) are
never assumed confined.
"""

from __future__ import annotations

import ast

from ..callgraph import FunctionInfo, Program
from ..engine import FileContext, Finding, ProgramRule
from ..summaries import HeldWalker, LockModel, LockRef, _is_mechanism

#: classes whose instances are single-caller engine state
_ENGINE_TYPES = frozenset({"Database", "ShardedDatabase",
                           "DurabilityController"})

#: attribute/parameter names documented as engine handles (backstop for
#: spots the type inference cannot reach)
_ROOT_NAMES = frozenset({"db", "_db", "router", "_router"})


def _in_serve_scope(posix_path: str) -> bool:
    return "repro/serve/" in posix_path and not _is_mechanism(posix_path)


class SlotConfinementRule(ProgramRule):
    id = "R10"
    name = "slot-confinement"
    description = ("engine state (Database/ShardedDatabase/WAL controller) "
                   "reachable from repro/serve/ must be accessed under the "
                   "FairScheduler engine slot: calls, stores, and deep "
                   "attribute reads outside the slot are confinement "
                   "escapes (DESIGN.md §17)")
    hint = ("wrap the access in 'with <scheduler>.slot(...)', or justify "
            "the escape with '# reprolint: disable-next=R10 -- ...' if "
            "the access is provably benign")

    def check_program(self, files: list[FileContext],
                      shared: dict[str, object]) -> list[Finding]:
        program = Program.of(files, shared)
        locks = LockModel.of(program, shared)
        confined = self._confined_functions(program, locks)
        findings: list[Finding] = []
        for fn in program.functions:
            if not _in_serve_scope(fn.ctx.posix_path):
                continue
            walker = _ConfinementWalker(self, program, locks, fn,
                                        fn.qualname in confined)
            walker.run()
            findings.extend(walker.findings)
        return findings

    def _confined_functions(self, program: Program,
                            locks: LockModel) -> set[str]:
        """Greatest fixpoint of "every resolved call site holds the slot"."""
        sites: dict[str, list[tuple[str, bool]]] = {}
        slot_key = locks.engine_slot.key
        for fn in program.functions:
            if _is_mechanism(fn.ctx.posix_path):
                continue

            def on_call(callee: FunctionInfo, call: ast.Call,
                        held: list[LockRef],
                        _caller: str = fn.qualname) -> None:
                in_slot = any(ref.key == slot_key for ref in held)
                sites.setdefault(callee.qualname, []).append(
                    (_caller, in_slot))

            HeldWalker(program, locks, fn, on_call=on_call).run()
        confined = {name for name, callers in sites.items() if callers}
        changed = True
        while changed:
            changed = False
            for name in list(confined):
                if not all(in_slot or caller in confined
                           for caller, in_slot in sites[name]):
                    confined.discard(name)
                    changed = True
        return confined


class _ConfinementWalker:
    """Lexical walk of one serve-layer function flagging out-of-slot
    engine accesses; tracks the slot flag, a local type env, and the
    rooted-depth of local aliases."""

    def __init__(self, rule: SlotConfinementRule, program: Program,
                 locks: LockModel, fn: FunctionInfo,
                 base_in_slot: bool) -> None:
        self.rule = rule
        self.program = program
        self.locks = locks
        self.fn = fn
        self.base_in_slot = base_in_slot
        self.env = dict(fn.param_types)
        self.rooted: dict[str, int] = {
            name: 0 for name, hint in fn.param_types.items()
            if self._engine_type(hint)}
        self.findings: list[Finding] = []

    def run(self) -> None:
        self._stmts(self.fn.node.body, self.base_in_slot)

    @staticmethod
    def _engine_type(hint: str | None) -> bool:
        if hint is None:
            return False
        if hint.startswith("list[") and hint.endswith("]"):
            hint = hint[5:-1]
        return hint in _ENGINE_TYPES

    # --------------------------------------------------------------- depth

    def _rooted_depth(self, expr: ast.expr) -> int | None:
        """0 for an engine handle, n for an access n attributes below
        one, ``None`` for expressions not reaching engine state."""
        if isinstance(expr, ast.Name):
            if expr.id in self.rooted:
                return self.rooted[expr.id]
            if self._engine_type(self.env.get(expr.id)):
                return 0
            return None
        if isinstance(expr, ast.Attribute):
            if self._engine_type(self.program.infer_type(
                    expr, self.fn, self.env)):
                return 0
            if isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self" and self.fn.cls is not None:
                if expr.attr in _ROOT_NAMES \
                        or self._confined_attr(expr.attr):
                    return 0
            below = self._rooted_depth(expr.value)
            return None if below is None else below + 1
        if isinstance(expr, ast.Subscript):
            return self._rooted_depth(expr.value)
        return None

    def _confined_attr(self, attr: str) -> bool:
        seen: set[str] = set()
        stack = [self.fn.cls.name] if self.fn.cls is not None else []
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if (name, attr) in self.locks.confined_attrs:
                return True
            cls = self.program.class_named(name)
            if cls is not None:
                stack.extend(cls.bases)
        return False

    # ---------------------------------------------------------- statements

    def _stmts(self, body: list[ast.stmt], in_slot: bool) -> None:
        for stmt in body:
            self._stmt(stmt, in_slot)

    def _stmt(self, stmt: ast.stmt, in_slot: bool) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered = in_slot
            for item in stmt.items:
                for ref in self.locks.acquisitions(
                        item.context_expr, self.fn, self.env):
                    if ref.key == self.locks.engine_slot.key:
                        entered = True
                self._expr(item.context_expr, in_slot)
            self._stmts(stmt.body, entered)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._stmts(stmt.body, False)   # runs later, slot not implied
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value, in_slot)
            for target in stmt.targets:
                self._store(target, in_slot)
            if len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                self._bind(stmt.targets[0].id, stmt.value)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                self._expr(stmt.value, in_slot)
            self._store(stmt.target, in_slot)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body, in_slot)
            for handler in stmt.handlers:
                self._stmts(handler.body, in_slot)
            self._stmts(stmt.orelse, in_slot)
            self._stmts(stmt.finalbody, in_slot)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, in_slot)
            self._stmts(stmt.body, in_slot)
            self._stmts(stmt.orelse, in_slot)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, in_slot)
            self._stmts(stmt.body, in_slot)
            self._stmts(stmt.orelse, in_slot)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, in_slot)

    def _bind(self, name: str, value: ast.expr) -> None:
        hint = self.program.infer_type(value, self.fn, self.env)
        if hint is not None:
            self.env[name] = hint
        depth = self._rooted_depth(value)
        if depth is not None:
            self.rooted[name] = depth
        elif name in self.rooted:
            del self.rooted[name]

    def _store(self, target: ast.expr, in_slot: bool) -> None:
        if in_slot:
            return
        base: ast.expr | None = None
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
        if base is not None and self._rooted_depth(base) is not None:
            self.findings.append(self.rule.finding_at(
                self.fn.ctx.path, target,
                f"{self.fn.qualname} writes to engine state outside the "
                f"engine slot"))

    # --------------------------------------------------------- expressions

    def _expr(self, expr: ast.expr, in_slot: bool) -> None:
        if isinstance(expr, ast.Lambda):
            return
        if isinstance(expr, ast.Call):
            func = expr.func
            if not in_slot and isinstance(func, ast.Attribute) \
                    and self._rooted_depth(func.value) is not None:
                self.findings.append(self.rule.finding_at(
                    self.fn.ctx.path, expr,
                    f"{self.fn.qualname} calls {func.attr}() through "
                    f"engine state outside the engine slot"))
            else:
                self._expr(func, in_slot)
            for arg in expr.args:
                self._expr(arg, in_slot)
            for kw in expr.keywords:
                self._expr(kw.value, in_slot)
            return
        if isinstance(expr, ast.Attribute):
            depth = self._rooted_depth(expr)
            if not in_slot and depth is not None and depth >= 2:
                self.findings.append(self.rule.finding_at(
                    self.fn.ctx.path, expr,
                    f"{self.fn.qualname} reads engine-internal state "
                    f"({expr.attr!r}, {depth} levels below the engine "
                    f"root) outside the engine slot"))
                return
            self._expr(expr.value, in_slot)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, in_slot)
