"""R4 — storage-bypass: all engine I/O flows through the simulated device.

Every read and write in the engine is charged to the Fig. 8 device cost
model via :class:`~repro.sim.device.SimulatedDevice` (and the page
abstraction on top, :class:`~repro.storage.pagefile.PageFile`).  Direct
host I/O — ``open()``, ``os.read``, ``mmap`` — would move bytes the
DeviceStats counters never see, so every benchmark derived from them
(Fig. 8, 12c, 12d, write amplification) would silently under-count.
Host-side tooling that legitimately writes files (report emitters, trace
dumps) must say so with a justified pragma.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule

#: fully qualified callables that perform host I/O
_BANNED_CALLS = {
    "open": "direct file open",
    "io.open": "direct file open",
    "io.FileIO": "direct file open",
    "os.open": "direct fd open",
    "os.fdopen": "direct fd open",
    "os.read": "direct fd read",
    "os.write": "direct fd write",
    "os.pread": "direct fd read",
    "os.pwrite": "direct fd write",
    "os.sendfile": "direct fd copy",
    "os.truncate": "direct file mutation",
    "os.ftruncate": "direct file mutation",
    "mmap.mmap": "memory-mapped host I/O",
    "pathlib.Path.open": "direct file open",
    "shutil.copyfile": "host file copy",
    "shutil.copy": "host file copy",
}

#: method names that smell like host I/O when called on a pathlib.Path-ish
#: receiver; matched only for receivers we can resolve to ``pathlib``
_PATH_METHODS = frozenset({
    "open", "read_bytes", "read_text", "write_bytes", "write_text",
    "unlink", "touch",
})


class StorageBypassRule(Rule):
    id = "R4"
    name = "storage-bypass"
    description = ("no direct open()/os.*/mmap I/O in engine code — every "
                   "byte goes through SimulatedDevice/PageFile so "
                   "DeviceStats and the Fig. 8 cost model stay truthful")
    hint = ("allocate/read/write through PageFile (repro/storage/"
            "pagefile.py) or SimulatedDevice; host-side tooling needs a "
            "justified '# reprolint: disable=R4 -- ...' pragma")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        shadowed_open = self._open_is_shadowed(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual is None:
                continue
            if qual == "open" and shadowed_open:
                continue
            reason = _BANNED_CALLS.get(qual)
            if reason is None and "." in qual:
                root, _, method = qual.rpartition(".")
                if method in _PATH_METHODS and root.startswith("pathlib"):
                    reason = "pathlib host I/O"
            if reason is not None:
                findings.append(self.finding(
                    ctx, node,
                    f"{qual}() bypasses the simulated device ({reason}): "
                    f"DeviceStats will not account this I/O"))
        return findings

    @staticmethod
    def _open_is_shadowed(ctx: FileContext) -> bool:
        """True when the module defines or imports its own ``open``."""
        imported = ctx.imports.get("open")
        if imported is not None and imported not in ("open", "io.open"):
            return True
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == "open":
                return True
        return False
