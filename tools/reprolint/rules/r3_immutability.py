"""R3 — immutability: persisted partitions and runs are written once.

A :class:`~repro.index.runs.PersistedRun` / ``PersistedPartition`` is the
durable unit the manifest points at: recovery re-attaches it purely from
metadata, scans share its pages through the buffer pool, and the crash
sweep assumes its bytes never change after install.  Any in-place mutation
outside the defining modules (and the eviction/recovery builders) silently
diverges memory from storage — exactly the corruption a fault sweep then
mis-attributes to the write path.

Detection is intentionally structural (no type inference):

* attribute stores / ``del`` / subscript stores on a local variable bound
  to a ``PersistedRun(...)``, ``PersistedRun.restore(...)`` or
  ``PersistedPartition(...)`` call in the same function;
* the same for the batch scan pipeline's published page units: a
  ``RunPage(...)``, ``LeafBatch(...)`` or ``decode_leaf_batch(...)`` /
  ``<run>.load_page(...)`` result is shared through the buffer pool and
  zero-copy slices after publication — mutating one corrupts every
  concurrent reader;
* the same through the conventional ``<obj>.run`` attribute chain (a
  ``PersistedPartition``'s run) — e.g. ``part.run.page_nos = []``;
* mutating-method calls (``append``/``extend``/``clear``/...) on
  *attributes of* such objects — e.g. ``part.run.page_nos.append(n)``.

Lifecycle methods of the objects themselves (``run.free()``) are part of
the owning module's public API and are not flagged.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule

#: classes whose instances are write-once after construction
_OWNER_CLASSES = frozenset({"PersistedRun", "PersistedPartition",
                            "RunPage", "LeafBatch"})

#: factory functions/methods whose result is a published page batch
_BATCH_FACTORIES = frozenset({"decode_leaf_batch", "load_page"})

#: modules allowed to construct/mutate them: definers and builders
_ALLOWED_MODULES = (
    "repro/index/runs.py",        # PersistedRun/RunPage definition
    "repro/core/partition.py",    # PersistedPartition definition
    "repro/core/eviction.py",     # build_partition / PartitionMetaBuilder
    "repro/core/serialization.py",   # LeafBatch definition / decoder
    "repro/durability/recovery.py",  # restore_partition (re-attach)
)

#: container methods that mutate their receiver in place
_MUTATORS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "sort",
    "reverse", "update", "add", "discard", "setdefault", "popitem",
    "appendleft", "popleft",
})


def _constructed_names(func: ast.AST) -> set[str]:
    """Local names bound to an owner-class constructor, ``.restore`` or a
    page-batch factory (``decode_leaf_batch`` / ``<run>.load_page``)."""
    tracked: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(node.value,
                                                              ast.Call):
            continue
        callee = node.value.func
        owned = False
        if isinstance(callee, ast.Name):
            owned = (callee.id in _OWNER_CLASSES
                     or callee.id in _BATCH_FACTORIES)
        elif isinstance(callee, ast.Attribute):
            # PersistedRun.restore(...) / <run>.load_page(...)
            owned = (callee.attr in _BATCH_FACTORIES
                     or (isinstance(callee.value, ast.Name)
                         and callee.value.id in _OWNER_CLASSES))
        if not owned:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                tracked.add(target.id)
    return tracked


def _chain(expr: ast.expr) -> tuple[ast.expr, list[str]]:
    """Peel Attribute/Subscript wrappers; returns (root, attrs outside-in)."""
    attrs: list[str] = []
    while True:
        if isinstance(expr, ast.Attribute):
            attrs.append(expr.attr)
            expr = expr.value
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        else:
            return expr, attrs


class ImmutabilityRule(Rule):
    id = "R3"
    name = "immutability"
    description = ("no attribute stores or container mutations on "
                   "PersistedRun/PersistedPartition objects or published "
                   "page batches (RunPage/LeafBatch) outside their "
                   "defining modules and builders")
    hint = ("build a new partition through build_partition()/PersistedRun "
            "instead of mutating an installed one — recovery and the "
            "manifest assume persisted state never changes in place")

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.in_module(*_ALLOWED_MODULES):
            return []
        findings: list[Finding] = []
        scopes: list[ast.AST] = [ctx.tree]
        scopes += [n for n in ast.walk(ctx.tree)
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        for scope in scopes:
            tracked = _constructed_names(scope)
            body = scope.body if isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef,
                        ast.Module)) else []
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)) \
                            and node is not stmt:
                        continue   # inner scopes get their own pass
                    findings.extend(self._check_node(ctx, node, tracked))
        # de-duplicate: module pass and function passes can both visit a node
        unique = {(f.line, f.col, f.message): f for f in findings}
        return list(unique.values())

    # ------------------------------------------------------------- internal

    def _check_node(self, ctx: FileContext, node: ast.AST,
                    tracked: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target] if isinstance(node, ast.AugAssign)
                       else node.targets)
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                owner = target.value if isinstance(target, (ast.Attribute,
                                                            ast.Subscript)) \
                    else target
                why = self._owner_reason(owner, tracked)
                if why is not None:
                    verb = ("del" if isinstance(node, ast.Delete)
                            else "store to")
                    findings.append(self.finding(
                        ctx, node,
                        f"{verb} {ast.unparse(target)} mutates {why} "
                        f"outside its defining module"))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS:
            receiver = node.func.value
            # only attributes *of* an owned object are immutable state;
            # a tracked name's own method calls are its public API
            if isinstance(receiver, (ast.Attribute, ast.Subscript)):
                why = self._owner_reason(receiver, tracked)
                if why is not None:
                    findings.append(self.finding(
                        ctx, node,
                        f"{ast.unparse(node.func)}() mutates {why} "
                        f"outside its defining module"))
        return findings

    @staticmethod
    def _owner_reason(expr: ast.expr, tracked: set[str]) -> str | None:
        """Is ``expr`` (the object whose attribute is being touched) a
        persisted-run/partition?  Returns a description or None."""
        root, attrs = _chain(expr)
        if isinstance(root, ast.Name) and root.id in tracked:
            return f"a {root.id!r} persisted run/partition"
        if "run" in attrs:
            return "a persisted run (via the '.run' attribute)"
        return None
