"""R1 — determinism: engine code must not consult wall-clock time or
unseeded randomness.

The whole simulation is deterministic: device latencies advance the shared
:class:`repro.sim.clock.SimClock`, and every random stream is a seeded
``random.Random`` instance owned by its workload.  A single ``time.time()``
or module-level ``random.random()`` call silently breaks run-for-run
reproducibility — benchmarks stop being comparable and the crash sweep
stops being replayable.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule

#: fully qualified callables that read the host clock or entropy pool
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.process_time": "wall-clock read",
    "time.sleep": "wall-clock sleep",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host-state-derived id",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.randbits": "OS entropy",
}

#: ``random.<fn>()`` hits the shared module-level RNG, whose state any other
#: import can perturb; only instantiating a seeded ``random.Random`` (or the
#: stateless helpers below) is allowed
_RANDOM_ALLOWED = {"Random", "SystemRandom"}  # SystemRandom caught separately


class DeterminismRule(Rule):
    id = "R1"
    name = "determinism"
    description = ("no wall-clock / unseeded randomness in engine code; "
                   "simulated time comes from repro.sim.clock.SimClock")
    hint = ("advance/read the shared SimClock (repro/sim/clock.py), or use "
            "a seeded random.Random owned by the caller")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual is None:
                continue
            reason = _BANNED_CALLS.get(qual)
            if reason is not None:
                findings.append(self.finding(
                    ctx, node,
                    f"nondeterministic call {qual}() ({reason}) in engine "
                    f"code"))
                continue
            if qual == "random.SystemRandom" or qual.startswith(
                    "random.SystemRandom."):
                findings.append(self.finding(
                    ctx, node,
                    "random.SystemRandom draws OS entropy and can never be "
                    "seeded"))
                continue
            parts = qual.split(".")
            if len(parts) == 2 and parts[0] == "random" \
                    and parts[1] not in _RANDOM_ALLOWED:
                findings.append(self.finding(
                    ctx, node,
                    f"module-level random.{parts[1]}() uses the shared "
                    f"unseeded RNG"))
        return findings
