"""R8 — concurrency confinement: raw threading primitives live only in
the serve layer and the two synchronized transaction components.

The engine core is single-caller by design: trees, buffer pool, simulated
device and clock are confined to the serve layer's engine slot, and their
determinism arguments (golden traces, crash-sweep oracles) assume no
hidden concurrency.  A stray ``threading.Lock`` in a core module either
papers over a confinement bug or silently creates one — the fix is to
route the shared state through ``repro/serve/`` (slot confinement, the
ordered-lock discipline of DESIGN.md §15.2) or, for transaction state,
through the two components that are explicitly synchronized and
documented as such (``txn/manager.py``, ``txn/status.py``).

The rule bans importing ``threading``, ``_thread``, ``queue``,
``concurrent`` or ``multiprocessing`` — statically or via
``__import__`` — everywhere else under ``repro/``.  Like R7, the import
alone is banned: an unused import is one refactor away from an
unsynchronized critical section.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule

#: module roots whose import is confined to the allowlist
_BANNED_MODULES = ("threading", "_thread", "queue", "concurrent",
                   "multiprocessing")

#: path fragments allowed to use raw threading primitives (DESIGN.md §15.2)
_ALLOWED_FRAGMENTS = (
    "repro/serve/",
    "repro/txn/manager.py",
    "repro/txn/status.py",
    "repro/obs/race.py",    # opt-in lockset/fuzzer instrumentation (§17.4)
)


class ConcurrencyConfinementRule(Rule):
    id = "R8"
    name = "concurrency-confinement"
    description = ("raw threading primitives (threading/_thread/queue/"
                   "concurrent/multiprocessing) are confined to repro/serve/, "
                   "the synchronized txn components (txn/manager.py, "
                   "txn/status.py) and the race instrumentation "
                   "(obs/race.py)")
    hint = ("confine shared state to the serve layer's engine slot or one "
            "of the synchronized txn components; genuinely new "
            "synchronized components need a justified "
            "'# reprolint: disable=R8 -- ...' pragma plus a DESIGN.md "
            "§15.2 rank entry")

    def check(self, ctx: FileContext) -> list[Finding]:
        if any(fragment in ctx.posix_path
               for fragment in _ALLOWED_FRAGMENTS):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        findings.append(self.finding(
                            ctx, node,
                            f"import of {alias.name!r} outside the "
                            f"concurrency allowlist — the engine core is "
                            f"single-caller (DESIGN.md §15)"))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative import: stays project-internal
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    findings.append(self.finding(
                        ctx, node,
                        f"from-import of {node.module!r} outside the "
                        f"concurrency allowlist — the engine core is "
                        f"single-caller (DESIGN.md §15)"))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_dynamic_import(ctx, node))
        return findings

    def _check_dynamic_import(self, ctx: FileContext,
                              node: ast.Call) -> list[Finding]:
        # __import__("threading") dodges the static import ban above
        if ctx.qualname(node.func) != "__import__" or not node.args:
            return []
        first = node.args[0]
        if not isinstance(first, ast.Constant) or \
                not isinstance(first.value, str):
            return []
        root = first.value.split(".")[0]
        if root not in _BANNED_MODULES:
            return []
        return [self.finding(
            ctx, node,
            f"dynamic import of {first.value!r} outside the concurrency "
            f"allowlist — the engine core is single-caller "
            f"(DESIGN.md §15)")]
