"""R5 — error-discipline: raises stay inside the ``ReproError`` hierarchy
and durability paths never swallow exceptions.

Callers catch :class:`repro.errors.ReproError`; a stray ``ValueError``
escapes every such handler (PR 3 found exactly this in the key codec).
Conversely, a ``try/except`` that silently eats an exception inside the
durability code can turn a real torn write into "recovery succeeded".

Checks:

* ``raise SomeName(...)`` where ``SomeName`` is a known exception that is
  *not* a ReproError subclass (``NotImplementedError`` for abstract
  interfaces is allowed; re-raising a caught object — ``raise exc`` — is
  allowed; the hierarchy is parsed from ``errors.py`` so new subclasses are
  picked up automatically);
* bare ``except:`` anywhere;
* in durability-critical modules (``durability/``, ``storage/``), an
  ``except Exception``/``BaseException`` handler whose body cannot re-raise
  (no ``raise`` statement at all) — it swallows crashes wholesale.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule

#: modules where a swallowed broad exception can mask a corruption
_DURABILITY_PATHS = ("repro/durability/", "repro/storage/")

#: raising these is always fine: abstract methods, generator protocol
_ALWAYS_ALLOWED = frozenset({
    "NotImplementedError", "StopIteration", "StopAsyncIteration",
    "GeneratorExit", "KeyboardInterrupt", "SystemExit",
})


class ErrorDisciplineRule(Rule):
    id = "R5"
    name = "error-discipline"
    description = ("every raise constructs a ReproError subclass; no bare "
                   "or swallowed excepts in durability paths")
    hint = ("raise a repro.errors.ReproError subclass (add one if no "
            "existing class fits) so callers can catch the library base "
            "class")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        errors = ctx.project.repro_errors
        in_durability = any(part in ctx.posix_path
                            for part in _DURABILITY_PATHS)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                findings.extend(self._check_raise(ctx, node, errors))
            elif isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_handler(ctx, node,
                                                    in_durability))
        return findings

    # ------------------------------------------------------------- internal

    def _check_raise(self, ctx: FileContext, node: ast.Raise,
                     errors: frozenset[str]) -> list[Finding]:
        exc = node.exc
        if exc is None:
            return []                       # bare re-raise
        if isinstance(exc, ast.Name):
            return []                       # re-raising a caught object
        if not isinstance(exc, ast.Call):
            return []                       # dynamic shape: out of scope
        callee = exc.func
        if not isinstance(callee, ast.Name):
            return []                       # attribute/dynamic: out of scope
        name = callee.id
        if name in errors or name in _ALWAYS_ALLOWED:
            return []
        local = ctx.imports.get(name, name)
        if local.split(".")[-1] in errors:
            return []
        return [self.finding(
            ctx, node,
            f"raise {name}(...) escapes the ReproError hierarchy — "
            f"callers catching ReproError will not see it")]

    def _check_handler(self, ctx: FileContext, node: ast.ExceptHandler,
                       in_durability: bool) -> list[Finding]:
        if node.type is None:
            return [self.finding(
                ctx, node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                "hides real failures",
                hint="catch the narrowest exception that the body handles")]
        if not in_durability:
            return []
        broad = any(
            isinstance(name, ast.Name) and name.id in ("Exception",
                                                       "BaseException")
            for name in (node.type.elts if isinstance(node.type, ast.Tuple)
                         else [node.type]))
        if not broad:
            return []
        if any(isinstance(sub, ast.Raise) for stmt in node.body
               for sub in ast.walk(stmt)):
            return []
        return [self.finding(
            ctx, node,
            "broad except swallows exceptions in a durability path — a "
            "torn write would be silently reported as success",
            hint="catch specific ReproError subclasses, or re-raise after "
                 "cleanup")]
