"""R9 — static lock-order verification against the §15.2 rank table.

PR 7 made deadlock freedom rest on a total order over lock ranks
(ENGINE 10 → TXN_MANAGER 20 → TXN_COMMITLOG 30 → GROUP_QUEUE 40,
enforced at runtime by ``OrderedLock``/``note_acquired``).  Runtime
enforcement only fires on interleavings a test happens to drive; this
rule proves the discipline over *every* static path instead:

* every raw ``threading.Lock``/``RLock``/``Condition`` construction
  must carry a rank (``# reprolint: lock-rank=NAME[, reentrant]``) or
  be an ``OrderedLock`` — an unranked mutex is invisible to the order
  and reported outright;
* a ``with`` acquisition whose rank is ≤ the highest lexically held
  rank violates the ascending order (re-entrant locks may re-acquire
  *their own* key);
* a call made while holding rank *r* is checked against the callee's
  transitive *may-acquire* summary: if anything reachable can acquire
  a rank ≤ *r*, the path can deadlock even though no single function
  shows both locks.

``lock-rank=LEAF`` marks terminal locks (registry/scheduler mutexes):
their huge rank makes *any* nested acquisition a violation, which is
exactly the documented contract.  ``serve/locks.py`` itself — the
mechanism — is exempt.
"""

from __future__ import annotations

import ast

from ..callgraph import FunctionInfo, Program
from ..engine import FileContext, Finding, ProgramRule
from ..summaries import (HeldWalker, LockModel, LockRef, SummaryTable,
                         _is_mechanism)


def _held_top(held: list[LockRef]) -> LockRef:
    return max(held, key=lambda ref: ref.rank)


class LockOrderRule(ProgramRule):
    id = "R9"
    name = "lock-order"
    description = ("whole-program lock-rank verification: ranks must "
                   "strictly ascend along every static acquisition path "
                   "(DESIGN.md §15.2/§17), raw mutexes must be rank-"
                   "annotated, and calls made under a lock are checked "
                   "against the callee's transitive may-acquire summary")
    hint = ("acquire locks in ascending §15.2 rank order; move the "
            "acquisition outside the held region, or rank the mutex with "
            "'# reprolint: lock-rank=NAME[, reentrant]'")

    def check_program(self, files: list[FileContext],
                      shared: dict[str, object]) -> list[Finding]:
        program = Program.of(files, shared)
        locks = LockModel.of(program, shared)
        summaries = SummaryTable.of(program, locks, shared)
        findings: list[Finding] = []
        for path, node, description in locks.unranked:
            findings.append(self.finding_at(
                path, node,
                f"{description} has no rank — it is invisible to the "
                f"§15.2 lock order"))
        for fn in program.functions:
            if _is_mechanism(fn.ctx.posix_path):
                continue
            findings.extend(self._check_function(program, locks,
                                                 summaries, fn))
        return findings

    def _check_function(self, program: Program, locks: LockModel,
                        summaries: SummaryTable,
                        fn: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []
        path = fn.ctx.path

        def on_acquire(ref: LockRef, node: ast.AST,
                       held: list[LockRef], is_note: bool) -> None:
            if not held:
                return
            held_keys = {h.key for h in held}
            if ref.reentrant and ref.key in held_keys:
                return      # RLock re-acquisition of its own key
            top = _held_top(held)
            if ref.rank <= top.rank:
                what = "notes acquisition of" if is_note else "acquires"
                findings.append(self.finding_at(
                    path, node,
                    f"{fn.qualname} {what} {ref.describe()} while "
                    f"holding {top.describe()} — ranks must strictly "
                    f"ascend"))

        def on_call(callee: FunctionInfo, call: ast.Call,
                    held: list[LockRef]) -> None:
            if not held:
                return
            held_keys = {h.key for h in held}
            top = _held_top(held)
            for ref in summaries.may_acquire(callee.qualname).values():
                if ref.reentrant and ref.key in held_keys:
                    continue
                if ref.rank <= top.rank:
                    findings.append(self.finding_at(
                        path, call,
                        f"{fn.qualname} calls {callee.qualname} while "
                        f"holding {top.describe()}, but it may "
                        f"transitively acquire {ref.describe()}"))
                    break   # one finding per call site is enough

        HeldWalker(program, locks, fn, on_acquire=on_acquire,
                   on_call=on_call).run()
        return findings
