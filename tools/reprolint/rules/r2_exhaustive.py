"""R2 — record-exhaustive: dispatches on ``RecordType`` must be total.

The four-plus-one record types (REGULAR / REPLACEMENT / ANTI / TOMBSTONE /
REGULAR_SET, paper §3.2/§4.1 and §4.7) each carry different matter /
anti-matter semantics.  A dispatch that silently falls through for a type
it forgot — say, a merge added REGULAR_SET after the branch was written —
corrupts visibility rather than failing.  Any if/elif chain or ``match``
that dispatches on RecordType must therefore either name every member or
end in a branch that explicitly raises.

A lone ``if`` mentioning one member is a *filter*, not a dispatch, and is
not checked; the rule fires once at least two branches of a chain (or two
match cases) test RecordType members.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule


def _members_in(node: ast.AST, ctx: FileContext,
                members: frozenset[str]) -> set[str]:
    """RecordType members referenced anywhere inside ``node``."""
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in members:
            base = ctx.qualname(sub.value)
            if base is not None and base.split(".")[-1] == "RecordType":
                found.add(sub.attr)
    return found


def _body_raises(body: list[ast.stmt]) -> bool:
    """Does the branch body (not counting nested defs) contain a raise?"""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue
            if isinstance(sub, ast.Raise):
                return True
            # ``assert False/0, ...`` is an accepted unreachable marker
            if isinstance(sub, ast.Assert) \
                    and isinstance(sub.test, ast.Constant) \
                    and not sub.test.value:
                return True
    return False


class RecordExhaustiveRule(Rule):
    id = "R2"
    name = "record-exhaustive"
    description = ("if/elif and match dispatches on RecordType must cover "
                   "every member or end in an explicit raise")
    hint = ("handle the missing record type(s), or add a final else/case _ "
            "that raises — silent fall-through corrupts visibility")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        members = frozenset(ctx.project.record_types)
        elif_ifs: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and len(node.orelse) == 1 \
                    and isinstance(node.orelse[0], ast.If):
                elif_ifs.add(id(node.orelse[0]))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and id(node) not in elif_ifs:
                findings.extend(self._check_chain(ctx, node, members))
            elif isinstance(node, ast.Match):
                findings.extend(self._check_match(ctx, node, members))
        return findings

    # ------------------------------------------------------------- if/elif

    def _check_chain(self, ctx: FileContext, node: ast.If,
                     members: frozenset[str]) -> list[Finding]:
        covered: set[str] = set()
        dispatch_branches = 0
        current: ast.stmt = node
        final_else: list[ast.stmt] = []
        while isinstance(current, ast.If):
            tested = _members_in(current.test, ctx, members)
            if tested:
                dispatch_branches += 1
                covered |= tested
            if len(current.orelse) == 1 \
                    and isinstance(current.orelse[0], ast.If):
                current = current.orelse[0]
            else:
                final_else = current.orelse
                break
        if dispatch_branches < 2:
            return []       # a filter, not a dispatch
        missing = members - covered
        if not missing:
            return []
        if not final_else:
            return [self.finding(
                ctx, node,
                f"non-exhaustive RecordType dispatch: "
                f"{', '.join(sorted(missing))} fall(s) through silently "
                f"(no else branch)")]
        if not _body_raises(final_else):
            return [self.finding(
                ctx, node,
                f"RecordType dispatch does not cover "
                f"{', '.join(sorted(missing))} and its else branch does "
                f"not raise")]
        return []

    # --------------------------------------------------------------- match

    def _check_match(self, ctx: FileContext, node: ast.Match,
                     members: frozenset[str]) -> list[Finding]:
        covered: set[str] = set()
        dispatch_cases = 0
        wildcard: ast.match_case | None = None
        for case in node.cases:
            if self._is_wildcard(case.pattern) and case.guard is None:
                wildcard = case
                continue
            tested = _members_in(case.pattern, ctx, members)
            if case.guard is not None:
                tested |= _members_in(case.guard, ctx, members)
            if tested:
                dispatch_cases += 1
                if case.guard is None:
                    covered |= tested   # guarded cases may not match: they
                                        # never count toward coverage
        if dispatch_cases < 2:
            return []
        missing = members - covered
        if not missing:
            return []
        if wildcard is None:
            return [self.finding(
                ctx, node,
                f"non-exhaustive RecordType match: "
                f"{', '.join(sorted(missing))} fall(s) through silently "
                f"(no case _)")]
        if not _body_raises(wildcard.body):
            return [self.finding(
                ctx, node,
                f"RecordType match does not cover "
                f"{', '.join(sorted(missing))} and its case _ does not "
                f"raise")]
        return []

    @staticmethod
    def _is_wildcard(pattern: ast.pattern) -> bool:
        return isinstance(pattern, ast.MatchAs) and pattern.pattern is None
