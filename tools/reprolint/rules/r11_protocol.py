"""R11 — 2PC decision-protocol exhaustiveness over the shard layer.

DESIGN.md §16.3 fixes the cross-shard commit protocol: per-shard
PREPARE appends, one coordinator decision append as the atomic commit
point, then local COMMIT markers, status flips, and the coordinator
release.  Recovery correctness (all-shards-or-no-shards) depends on
*every* code path honouring that order — a marker before the decision,
or a path that skips the decision, silently breaks the crash sweep's
invariant without failing any live test.

The rule checks three things over the whole program:

* **placement** — the protocol ops (``append_prepare``,
  ``log_decision``, ``append_commit_marker``) may only be *called* from
  the coordinator layer (``shard/router.py``, ``shard/coordinator.py``,
  ``durability/controller.py``); a serve- or engine-layer call is a
  protocol bypass;
* **order** — for every coordinator-layer function that touches a 2PC
  op, all branch paths are enumerated (``if``/``elif`` forks; a loop
  runs each op-bearing body path at least once; ``raise``-terminated
  paths are error propagation and exempt), consecutive duplicate ops
  collapsed, and the result must be one of the accepted decision
  sequences — PREPAREs, then the decision, then markers, then status
  flips, then the coordinator release (or one of the non-2PC fast
  paths);
* **abort coverage** — a class with a PREPARE-bearing commit must have
  an ``abort`` whose every path aborts the per-shard transactions and
  releases the coordinator.

Op alphabet: ``P``=append_prepare, ``D``=log_decision,
``M``=append_commit_marker, ``C``=<shard>.txn.commit,
``F``=finish_commit, ``A``=<shard>.txn.abort, ``E``=coordinator.finish.
"""

from __future__ import annotations

import ast

from ..callgraph import ClassInfo, FunctionInfo, Program
from ..engine import FileContext, Finding, ProgramRule

#: modules allowed to call the 2PC ops
_COORDINATOR_MODULES = (
    "repro/shard/router.py",
    "repro/shard/coordinator.py",
    "repro/durability/controller.py",
)

#: the three ops whose *placement* is restricted
_RESTRICTED = {"append_prepare": "P", "log_decision": "D",
               "append_commit_marker": "M"}

#: accepted collapsed op sequences for a commit-side function
_ACCEPTED_COMMIT = frozenset({
    ("C", "F", "E"),            # single-shard fast path
    ("P", "D", "M", "F", "E"),  # full 2PC marker flow
    ("F", "E"),                 # read-only / non-durable status flips
})

_ACCEPTED_ABORT = frozenset({("A", "E")})

_PATH_CAP = 64


def _tail_attr(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _op_of(call: ast.Call) -> str | None:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr in _RESTRICTED:
        return _RESTRICTED[attr]
    receiver = _tail_attr(func.value)
    if attr == "finish_commit":
        return "F"
    if attr == "commit" and receiver == "txn":
        return "C"
    if attr == "abort" and receiver == "txn":
        return "A"
    if attr == "finish" and receiver in ("coordinator", "_coordinator"):
        return "E"
    return None


def _ops_in(node: ast.AST | None) -> tuple[str, ...]:
    if node is None:
        return ()
    ops = []
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            op = _op_of(child)
            if op is not None:
                ops.append(op)
    return tuple(ops)


class _Path:
    __slots__ = ("ops", "terminated", "raised")

    def __init__(self, ops: tuple[str, ...] = (), terminated: bool = False,
                 raised: bool = False) -> None:
        self.ops = ops
        self.terminated = terminated
        self.raised = raised


def _collapse(ops: tuple[str, ...]) -> tuple[str, ...]:
    out: list[str] = []
    for op in ops:
        if not out or out[-1] != op:
            out.append(op)
    return tuple(out)


def enumerate_paths(body: list[ast.stmt]) -> list[_Path]:
    """All branch paths through a statement list as op sequences.

    ``if``/``elif`` fork; loops run each op-bearing body path at least
    once (an op-free iteration cannot change the collapsed sequence);
    ``return`` terminates a path, ``raise`` terminates and marks it as
    error propagation.  Capped at ``_PATH_CAP`` paths.
    """
    paths = [_Path()]
    for stmt in body:
        alternatives = _stmt_alternatives(stmt)
        grown: list[_Path] = []
        seen: set[tuple] = set()
        for path in paths:
            if path.terminated:
                candidates = [path]
            else:
                candidates = [
                    _Path(path.ops + alt.ops, alt.terminated, alt.raised)
                    for alt in alternatives]
            for cand in candidates:
                key = (cand.ops, cand.terminated, cand.raised)
                if key not in seen:
                    seen.add(key)
                    grown.append(cand)
        paths = grown[:_PATH_CAP]
    return paths


def _stmt_alternatives(stmt: ast.stmt) -> list[_Path]:
    if isinstance(stmt, ast.Return):
        return [_Path(_ops_in(stmt.value), terminated=True)]
    if isinstance(stmt, ast.Raise):
        return [_Path(_ops_in(stmt.exc), terminated=True, raised=True)]
    if isinstance(stmt, ast.If):
        test = _ops_in(stmt.test)
        alts = [_Path(test + p.ops, p.terminated, p.raised)
                for p in enumerate_paths(stmt.body)]
        alts += [_Path(test + p.ops, p.terminated, p.raised)
                 for p in enumerate_paths(stmt.orelse)]
        return _dedupe(alts)
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        prefix = _ops_in(stmt.iter if isinstance(
            stmt, (ast.For, ast.AsyncFor)) else stmt.test)
        inner = [p for p in enumerate_paths(stmt.body + stmt.orelse)
                 if p.ops or p.terminated]
        if not inner:
            return [_Path(prefix)]
        return _dedupe([_Path(prefix + p.ops, p.terminated, p.raised)
                        for p in inner])
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        prefix = tuple(op for item in stmt.items
                       for op in _ops_in(item.context_expr))
        return _dedupe([_Path(prefix + p.ops, p.terminated, p.raised)
                        for p in enumerate_paths(stmt.body)])
    if isinstance(stmt, ast.Try):
        # the happy path; handler bodies are error propagation
        alts = [_Path(p.ops, p.terminated, p.raised)
                for p in enumerate_paths(
                    stmt.body + stmt.orelse + stmt.finalbody)]
        return _dedupe(alts)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return [_Path()]    # nested definitions execute later
    return [_Path(_ops_in(stmt))]


def _dedupe(paths: list[_Path]) -> list[_Path]:
    out: list[_Path] = []
    seen: set[tuple] = set()
    for path in paths:
        key = (path.ops, path.terminated, path.raised)
        if key not in seen:
            seen.add(key)
            out.append(path)
    return out[:_PATH_CAP]


class ProtocolExhaustivenessRule(ProgramRule):
    id = "R11"
    name = "2pc-protocol"
    description = ("every static path through the shard layer's 2PC "
                   "functions must follow the decision protocol "
                   "(PREPAREs -> coordinator decision -> markers -> "
                   "status flips -> coordinator release; DESIGN.md "
                   "§16.3/§17), and the protocol ops may only be called "
                   "from the coordinator layer")
    hint = ("keep append_prepare/log_decision/append_commit_marker calls "
            "in shard/router.py, shard/coordinator.py or "
            "durability/controller.py, ordered P -> D -> M -> "
            "finish_commit -> coordinator.finish on every branch")

    def check_program(self, files: list[FileContext],
                      shared: dict[str, object]) -> list[Finding]:
        program = Program.of(files, shared)
        findings: list[Finding] = []
        prepare_classes: dict[int, tuple[ClassInfo, FunctionInfo]] = {}
        for fn in program.functions:
            allowed = fn.ctx.in_module(*_COORDINATOR_MODULES)
            if not allowed:
                findings.extend(self._placement(fn))
                continue
            if fn.node.name in _RESTRICTED:
                continue    # the op definitions themselves
            ops = _ops_in(fn.node)
            if not any(op in ("P", "D", "M") for op in ops):
                continue
            findings.extend(self._order(fn))
            if "P" in ops and fn.cls is not None:
                prepare_classes[id(fn.cls)] = (fn.cls, fn)
        for cls, commit_fn in prepare_classes.values():
            findings.extend(self._abort_coverage(program, cls, commit_fn))
        return findings

    def _placement(self, fn: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _RESTRICTED:
                findings.append(self.finding_at(
                    fn.ctx.path, node,
                    f"{fn.qualname} calls 2PC op "
                    f"{node.func.attr}() outside the coordinator layer "
                    f"— the decision protocol is not its to drive"))
        return findings

    def _order(self, fn: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []
        paths = enumerate_paths(fn.node.body)
        if len(paths) >= _PATH_CAP:
            return [self.finding_at(
                fn.ctx.path, fn.node,
                f"{fn.qualname} has too many branch paths to verify the "
                f"2PC decision protocol — simplify the control flow")]
        for path in paths:
            if path.raised:
                continue
            collapsed = _collapse(path.ops)
            if collapsed and collapsed not in _ACCEPTED_COMMIT:
                findings.append(self.finding_at(
                    fn.ctx.path, fn.node,
                    f"{fn.qualname} has a path with 2PC op sequence "
                    f"({', '.join(collapsed)}) — not an accepted "
                    f"decision order (C,F,E | P,D,M,F,E | F,E)"))
        return _dedupe_findings(findings)

    def _abort_coverage(self, program: Program, cls: ClassInfo,
                        commit_fn: FunctionInfo) -> list[Finding]:
        abort = cls.methods.get("abort")
        if abort is None:
            return [self.finding_at(
                commit_fn.ctx.path, cls.node,
                f"{cls.name} runs 2PC commits but has no abort() — "
                f"every decision needs an abort path that releases the "
                f"coordinator")]
        findings: list[Finding] = []
        for path in enumerate_paths(abort.node.body):
            if path.raised:
                continue
            collapsed = _collapse(path.ops)
            if collapsed not in _ACCEPTED_ABORT:
                findings.append(self.finding_at(
                    abort.ctx.path, abort.node,
                    f"{abort.qualname} has a path with op sequence "
                    f"({', '.join(collapsed) or 'empty'}) — abort must "
                    f"abort every shard then release the coordinator "
                    f"(A, E)"))
        return _dedupe_findings(findings)


def _dedupe_findings(findings: list[Finding]) -> list[Finding]:
    out: list[Finding] = []
    seen: set[tuple] = set()
    for finding in findings:
        key = (finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return out
