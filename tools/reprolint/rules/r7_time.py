"""R7 — time discipline: engine time flows through the observability
layer's SimClock-backed API.

R1 already bans *calling* wall-clock functions; R7 closes the remaining
holes so that every duration or timestamp an engine module records is
simulated time:

* importing ``time`` or ``datetime`` at all (including from-imports) is
  rejected in engine code — there is no legitimate engine use, and an
  unused import is one refactor away from a nondeterministic call;
* constructing :class:`repro.obs.tracing.Tracer` or
  :class:`repro.obs.registry.MetricsRegistry` directly outside
  ``repro/obs/`` is rejected — instruments must come from the database's
  :class:`~repro.obs.core.Observability` facade, whose tracer is bound to
  the shared :class:`~repro.sim.clock.SimClock`.  A privately built
  tracer would stamp events with a *different* clock, and its metrics
  would never appear in exports or invariant checks.

The observability package itself and the simulation layer are the
implementation of the sanctioned API, so ``repro/obs/`` and
``repro/sim/`` are exempt from the construction ban (but not from the
import ban — SimClock is a pure counter and needs no ``time``).
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule

#: module roots whose import alone is banned in engine code
_BANNED_MODULES = ("time", "datetime")

#: class names that only repro/obs/ may construct directly
_OBS_CLASS_NAMES = frozenset({"Tracer", "MetricsRegistry"})


class TimeDisciplineRule(Rule):
    id = "R7"
    name = "time-discipline"
    description = ("engine code records time only through the obs layer's "
                   "SimClock-backed API: no time/datetime imports, no "
                   "Tracer/MetricsRegistry construction outside repro/obs/")
    hint = ("use the Observability facade (db.obs) for spans and metrics, "
            "or the shared SimClock for durations; host-side tooling needs "
            "a justified '# reprolint: disable=R7 -- ...' pragma")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        findings.append(self.finding(
                            ctx, node,
                            f"import of {alias.name!r} in engine code — "
                            f"record time through the SimClock-backed obs "
                            f"API instead"))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative import: stays project-internal
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    findings.append(self.finding(
                        ctx, node,
                        f"from-import of {node.module!r} in engine code — "
                        f"record time through the SimClock-backed obs API "
                        f"instead"))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_dynamic_import(ctx, node))
                findings.extend(self._check_construction(ctx, node))
        return findings

    def _check_dynamic_import(self, ctx: FileContext,
                              node: ast.Call) -> list[Finding]:
        # __import__("time") dodges the static import ban above
        if ctx.qualname(node.func) != "__import__" or not node.args:
            return []
        first = node.args[0]
        if not isinstance(first, ast.Constant) or \
                not isinstance(first.value, str):
            return []
        root = first.value.split(".")[0]
        if root not in _BANNED_MODULES:
            return []
        return [self.finding(
            ctx, node,
            f"dynamic import of {first.value!r} in engine code — "
            f"record time through the SimClock-backed obs API instead")]

    def _check_construction(self, ctx: FileContext,
                            node: ast.Call) -> list[Finding]:
        if "repro/obs/" in ctx.posix_path or "repro/sim/" in ctx.posix_path:
            return []
        qual = ctx.qualname(node.func)
        if qual is None:
            return []
        last = qual.rsplit(".", 1)[-1]
        if last not in _OBS_CLASS_NAMES:
            return []
        # Flag the bare name (bound by a relative import, which
        # FileContext.imports cannot resolve) and any absolute path into
        # repro.obs; an unrelated class that merely shares the name would
        # be qualified under some other package and is left alone.
        if qual != last and not qual.startswith("repro.obs"):
            return []
        return [self.finding(
            ctx, node,
            f"direct {last}() construction outside repro/obs/ — "
            f"instruments must come from the Observability facade so "
            f"they share the simulated clock and appear in exports")]
