"""R6 — typing: complete annotations, no bare generics.

The ``mypy --strict`` gate runs in CI (mypy is not vendored into the
runtime image); R6 is the locally-runnable structural proxy that keeps the
tree from drifting between CI runs.  It enforces the two strictness
properties that are checkable without type inference:

* every ``def`` (including nested ones — mypy's ``disallow_untyped_defs``
  applies to them too) annotates its return type and every parameter
  except ``self``/``cls``;
* no annotation uses a bare generic (``tuple``, ``list``, ``dict``, ...)
  — mypy strict's ``disallow_any_generics``.  Use the aliases from
  ``repro.types`` (``Key``, ``SortKey``, ...) or spell the parameters.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule

#: names that are generic and therefore meaningless without parameters
_BARE_GENERICS = frozenset({
    "tuple", "list", "dict", "set", "frozenset", "type",
    "Tuple", "List", "Dict", "Set", "FrozenSet", "Type",
    "Callable", "Iterator", "Iterable", "Sequence", "Mapping",
    "MutableMapping", "Generator", "AsyncIterator", "Awaitable",
    "Coroutine", "Counter", "Deque", "DefaultDict", "OrderedDict",
})


def _first_arg_is_self_or_cls(args: ast.arguments) -> bool:
    ordered = args.posonlyargs + args.args
    return bool(ordered) and ordered[0].arg in ("self", "cls")


class TypingRule(Rule):
    id = "R6"
    name = "typing"
    description = ("every def fully annotated (params + return), no bare "
                   "generic annotations — local proxy for mypy --strict")
    hint = ("annotate the signature; for heterogeneous key tuples use "
            "repro.types.Key instead of bare 'tuple'")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_def(ctx, node))
            elif isinstance(node, ast.AnnAssign):
                findings.extend(self._check_annotation(
                    ctx, node.annotation, f"annotation of "
                    f"{ast.unparse(node.target)}"))
            elif isinstance(node, ast.arg) and node.annotation is not None:
                findings.extend(self._check_annotation(
                    ctx, node.annotation, f"annotation of parameter "
                    f"{node.arg!r}"))
        return findings

    # ------------------------------------------------------------- internal

    def _check_def(self, ctx: FileContext,
                   node: ast.FunctionDef | ast.AsyncFunctionDef
                   ) -> list[Finding]:
        findings: list[Finding] = []
        args = node.args
        ordered = args.posonlyargs + args.args + args.kwonlyargs
        skip_first = _first_arg_is_self_or_cls(args)
        for idx, arg in enumerate(ordered):
            if skip_first and idx == 0:
                continue
            if arg.annotation is None:
                findings.append(self.finding(
                    ctx, arg,
                    f"parameter {arg.arg!r} of {node.name}() is not "
                    f"annotated"))
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                findings.append(self.finding(
                    ctx, star,
                    f"parameter *{star.arg!r} of {node.name}() is not "
                    f"annotated"))
        if node.returns is None:
            findings.append(self.finding(
                ctx, node,
                f"{node.name}() has no return annotation"))
        else:
            findings.extend(self._check_annotation(
                ctx, node.returns, f"return annotation of {node.name}()"))
        return findings

    def _check_annotation(self, ctx: FileContext, annotation: ast.expr,
                          where: str) -> list[Finding]:
        findings: list[Finding] = []
        subscript_values: set[int] = set()
        for node in ast.walk(annotation):
            if isinstance(node, ast.Subscript):
                subscript_values.add(id(node.value))
        for node in ast.walk(annotation):
            bare: str | None = None
            if isinstance(node, ast.Name) and node.id in _BARE_GENERICS \
                    and id(node) not in subscript_values:
                bare = node.id
            elif isinstance(node, ast.Attribute) \
                    and node.attr in _BARE_GENERICS \
                    and id(node) not in subscript_values:
                qual = ctx.qualname(node)
                if qual is not None and qual.split(".")[0] in (
                        "typing", "collections", "t"):
                    bare = qual
            if bare is not None:
                findings.append(self.finding(
                    ctx, node,
                    f"bare generic {bare!r} in {where} "
                    f"(implicitly Any-parameterised)"))
        return findings
