"""Shared fixtures: a small simulated engine substrate per test."""

from __future__ import annotations

import pytest

from repro.buffer.pool import BufferPool
from repro.config import EngineConfig
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600, UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.txn.manager import TransactionManager


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-crash-sweep", action="store_true", default=False,
        help="run the crash-point sweep exhaustively (every I/O index) "
             "instead of the quick sampled subset")
    parser.addoption(
        "--fuzz-interleavings", action="store_true", default=False,
        help="install the seeded schedule perturber at every lock "
             "boundary (repro.obs.race.SchedulePerturber) for the whole "
             "session — shakes the concurrency suites out of convoy "
             "schedules")
    parser.addoption(
        "--fuzz-seed", type=int, default=0,
        help="seed for --fuzz-interleavings (decision stream replays "
             "for a given seed)")


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--fuzz-interleavings"):
        from repro.obs.race import SchedulePerturber
        perturber = SchedulePerturber(int(config.getoption("--fuzz-seed")))
        perturber.install()
        config._fuzz_perturber = perturber  # type: ignore[attr-defined]


def pytest_unconfigure(config: pytest.Config) -> None:
    perturber = getattr(config, "_fuzz_perturber", None)
    if perturber is not None:
        perturber.uninstall()
        del config._fuzz_perturber  # type: ignore[attr-defined]


@pytest.fixture
def run_crash_sweep(request: pytest.FixtureRequest) -> bool:
    """True when the exhaustive crash sweep was requested."""
    return bool(request.config.getoption("--run-crash-sweep"))


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def device(clock: SimClock) -> SimulatedDevice:
    return SimulatedDevice(UNIT_TEST_PROFILE, clock)


@pytest.fixture
def p3600(clock: SimClock) -> SimulatedDevice:
    return SimulatedDevice(INTEL_DC_P3600, clock)


@pytest.fixture
def config() -> EngineConfig:
    return EngineConfig()


@pytest.fixture
def pool() -> BufferPool:
    return BufferPool(capacity_pages=128)


@pytest.fixture
def small_pool() -> BufferPool:
    return BufferPool(capacity_pages=8)


@pytest.fixture
def pagefile(device: SimulatedDevice, config: EngineConfig) -> PageFile:
    return PageFile("test_file", device, config.page_size, config.extent_pages)


@pytest.fixture
def manager(clock: SimClock) -> TransactionManager:
    return TransactionManager(clock)
