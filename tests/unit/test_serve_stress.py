"""Multi-threaded stress tests for the serving layer (CI concurrency lane).

These tests run real OS threads and tolerate arbitrary interleavings: the
assertions are invariants (oracle equivalence, exact counter totals,
unique txid allocation, bounded queue states), never specific schedules.
They pin the two thread-safety fixes behind the serve layer — the commit
log's locked mutations under lock-free reads, and the transaction
manager's synchronized allocator/active-set — plus end-to-end serving
correctness under contention.
"""

import threading

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.serve import ServeConfig, SessionExecutor
from repro.sim.clock import SimClock
from repro.txn.manager import TransactionManager
from repro.txn.status import CommitLog, TxnStatus

pytestmark = pytest.mark.concurrency

THREADS = 8
TXNS_PER_THREAD = 200


class TestCommitLogStress:
    """Locked mutations + lock-free reads on the shared commit log."""

    def test_concurrent_register_and_decide(self):
        log = CommitLog()
        ids_per_thread: list[list[int]] = [[] for _ in range(THREADS)]
        next_id = [1]
        alloc = threading.Lock()
        errors: list[BaseException] = []

        def writer(slot: int) -> None:
            try:
                for i in range(TXNS_PER_THREAD):
                    with alloc:
                        txid = next_id[0]
                        next_id[0] += 1
                    log.register(txid)
                    if i % 3 == 2:
                        log.set_aborted(txid)
                    else:
                        log.set_committed(txid)
                    ids_per_thread[slot].append(txid)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                for _ in range(TXNS_PER_THREAD * 2):
                    probe = max(1, next_id[0] - 1)
                    status = log.status(probe)
                    assert status in (TxnStatus.IN_PROGRESS,
                                      TxnStatus.COMMITTED,
                                      TxnStatus.ABORTED)
                    # the watermark only advances and stays <= next id
                    assert log.watermark <= next_id[0]
                    log.aborted_ids  # exercise the locked snapshot
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = ([threading.Thread(target=writer, args=(i,))
                    for i in range(THREADS)]
                   + [threading.Thread(target=reader) for _ in range(2)])
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = THREADS * TXNS_PER_THREAD
        committed = sum(1 for ids in ids_per_thread
                        for i, _txid in enumerate(ids) if i % 3 != 2)
        got_committed = sum(
            1 for txid in range(1, total + 1)
            if log.status(txid) is TxnStatus.COMMITTED)
        assert got_committed == committed
        # every id decided -> the watermark caught up completely
        assert log.watermark == total + 1


class TestTransactionManagerStress:
    """The synchronized allocator: unique ids, exact lifecycle counts."""

    def test_concurrent_begin_commit_abort(self):
        manager = TransactionManager(SimClock())
        ids: list[set[int]] = [set() for _ in range(THREADS)]
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                for i in range(TXNS_PER_THREAD):
                    txn = manager.begin()
                    assert txn.id not in ids[slot]
                    ids[slot].add(txn.id)
                    if i % 4 == 3:
                        manager.abort(txn)
                    else:
                        manager.commit(txn)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        all_ids: set[int] = set()
        for s in ids:
            assert not (all_ids & s), "txid handed to two threads"
            all_ids |= s
        total = THREADS * TXNS_PER_THREAD
        assert len(all_ids) == total
        assert manager.next_txid == total + 1
        assert manager.committed_count + manager.aborted_count == total
        assert manager.aborted_count == THREADS * (TXNS_PER_THREAD // 4)
        assert manager.active_transactions == []
        assert manager.cutoff_txid() == total + 1
        # every decision published: visibility caches may trust all ids
        assert manager.decided_watermark == total + 1


class TestServedOracleStress:
    """N concurrent sessions over disjoint key ranges: the final state
    must equal the per-session oracles exactly, and every group-commit
    acknowledgement must be durable."""

    @pytest.mark.parametrize("group_commit", [True, False])
    def test_concurrent_sessions_match_oracle(self, group_commit):
        db = Database(EngineConfig(durability=True))
        db.create_table("t", [("k", "int"), ("v", "str")])
        db.create_index("ix", "t", ["k"], kind="mvpbt",
                        index_only_visibility=True)
        sessions = 8
        config = ServeConfig(max_sessions=sessions,
                             group_commit=group_commit,
                             group_size_target=4, group_window_s=0.002)
        oracles: dict[int, dict[int, str]] = {}
        oracle_lock = threading.Lock()

        def client_for(slot: int):
            base = slot * 1000

            def client(session):
                oracle: dict[int, str] = {}
                for i in range(30):
                    key = base + i
                    session.begin()
                    session.insert("t", (key, f"v{key}"))
                    session.commit()
                    oracle[key] = f"v{key}"
                    if i % 5 == 4:
                        session.begin()
                        session.update_by_key("ix", (key,),
                                              {"v": f"u{key}"})
                        session.commit()
                        oracle[key] = f"u{key}"
                    if i % 7 == 6:
                        session.begin()
                        session.delete_by_key("ix", (key,))
                        session.commit()
                        del oracle[key]
                with oracle_lock:
                    oracles[slot] = oracle
                return session.commits
            return client

        server = db.serve(config)
        commits = SessionExecutor(server, workers=sessions).run(
            [client_for(i) for i in range(sessions)])
        assert len(commits) == sessions

        want = sorted((k, v) for oracle in oracles.values()
                      for k, v in oracle.items())
        with server.session() as reader:
            reader.begin()
            got = sorted(reader.range_select("ix", None, None))
            reader.abort()
        assert got == want
        if group_commit:
            stats = server.committer.stats
            assert stats.commits == db.txn.committed_count
            assert db.durability.wal.appends == stats.groups
        server.close()

        # every acknowledged commit survives recovery (clean restart)
        recovered = Database.recover(db)
        txn = recovered.begin()
        assert sorted(recovered.range_select(txn, "ix", None, None)) == want
        txn.abort()


class TestGroupFormation:
    """Under 16 contending committers with a formation window, groups
    actually form — the fsync saving the whole layer exists for."""

    def test_groups_form_under_contention(self):
        db = Database(EngineConfig(durability=True))
        db.create_table("t", [("k", "int"), ("v", "str")])
        db.create_index("ix", "t", ["k"], kind="mvpbt",
                        index_only_visibility=True)
        server = db.serve(ServeConfig(
            max_sessions=16, group_size_target=8, group_window_s=0.004))

        def client_for(slot: int):
            def client(session):
                for i in range(20):
                    session.begin()
                    session.insert("t", (slot * 100 + i, "x"))
                    session.commit()
            return client

        SessionExecutor(server, workers=16).run(
            [client_for(i) for i in range(16)])
        stats = server.committer.stats
        assert stats.commits == 320
        # the invariant half: accounting is exact regardless of schedule
        assert db.durability.wal.appends == stats.groups
        assert stats.fsyncs_saved == stats.commits - stats.groups
        # the contention half: at least SOME batching happened.  16
        # threads x 20 commits with an 8-target window makes a zero-batch
        # run virtually impossible; a scheduler pathology that defeats
        # grouping entirely SHOULD fail this lane loudly.
        assert stats.max_group_size >= 2
        assert stats.groups < stats.commits
        server.close()
