"""Multi-threaded serving over the shard router (CI concurrency lane).

Real OS threads, invariant-only assertions: N concurrent sessions over a
4-shard router must (a) land on exactly the oracle state, (b) read
snapshot-exact cross-shard scans while writers commit around them —
every slice of a sliced scatter-gather scan comes from the session's one
global snapshot, never a torn mix — and (c) share the engine through the
FIFO fair scheduler even when their shards are disjoint (one engine slot
guards all shards: simulated devices and clocks are not thread-safe).
"""

import threading

import pytest

from repro.config import EngineConfig
from repro.obs.config import ObsConfig
from repro.serve import ServeConfig
from repro.shard import ShardConfig, ShardedDatabase

pytestmark = [pytest.mark.concurrency, pytest.mark.shard]

THREADS = 8
SHARDS = 4
TABLE = "t"
INDEX = "ix"


def make_server(durable=False, **serve_kw):
    config = EngineConfig(durability=durable,
                          obs=ObsConfig(enabled=True))
    router = ShardedDatabase(config, ShardConfig(shards=SHARDS))
    router.create_table(TABLE, [("id", "int"), ("val", "str")], "sias")
    router.create_index(INDEX, TABLE, ["id"], kind="mvpbt",
                        enable_gc=False, index_only_visibility=True)
    return router.serve(ServeConfig(**serve_kw))


class TestConcurrentSessions:
    def test_eight_sessions_match_oracle(self):
        server = make_server()
        per_thread = 25
        errors: list[BaseException] = []

        def client(slot: int) -> None:
            try:
                with server.session() as session:
                    for i in range(per_thread):
                        key = slot * 1000 + i

                        def work(s, key=key, slot=slot):
                            # two inserts per txn -> routinely cross-shard
                            s.insert(TABLE, (key, f"s{slot}"))
                            s.insert(TABLE, (key + 500, f"x{slot}"))
                            s.delete_by_key(INDEX, (key + 500,))

                        session.run(work)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with server.session() as session:
            session.begin()
            rows = list(session.batch_scan(INDEX))
            session.abort()
        want = sorted((slot * 1000 + i, f"s{slot}")
                      for slot in range(THREADS)
                      for i in range(per_thread))
        assert sorted(rows) == want
        stats = server.stats()
        assert stats["scheduler"]["ticks"] > 0
        assert server.active_sessions == 0
        server.close()

    def test_unique_global_txids_across_sessions(self):
        server = make_server()
        seen: list[int] = []
        lock = threading.Lock()
        errors: list[BaseException] = []

        def client() -> None:
            try:
                with server.session() as session:
                    for _ in range(50):
                        txid = session.begin()
                        with lock:
                            seen.append(txid)
                        session.abort()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client)
                   for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(seen) == len(set(seen)) == THREADS * 50
        server.close()


class TestSnapshotExactScans:
    def test_sliced_scan_is_snapshot_exact_under_commits(self):
        """A sliced cross-shard scan started before concurrent updates
        must return EXACTLY the begin-time state: no torn slices."""
        server = make_server(scan_slice_rows=8)
        base = {k: "base" for k in range(120)}
        with server.session() as session:
            def seed(s):
                for k, v in base.items():
                    s.insert(TABLE, (k, v))
            session.run(seed)

        started = threading.Event()
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer(slot: int) -> None:
            try:
                with server.session() as session:
                    i = 0
                    while not stop.is_set():
                        key = slot * 10 + (i % 10)

                        def work(s, key=key, i=i, slot=slot):
                            s.update_by_key(INDEX, (key,),
                                            {"val": f"w{slot}.{i}"})
                            s.insert(TABLE,
                                     (1000 + slot * 100 + i, "new"))

                        session.run(work)
                        i += 1
                        started.set()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in writers:
            t.start()
        started.wait(timeout=30)
        try:
            with server.session() as session:
                session.begin()
                snap_rows = dict(session.batch_scan(INDEX, slice_rows=8))
                count = session.count_range(INDEX, None, None)
                session.abort()
        finally:
            stop.set()
            for t in writers:
                t.join()
        assert not errors
        # the scan is one consistent cut: for every key the value is a
        # single committed version, and no key is ever half-present
        assert set(snap_rows) >= set(base), "snapshot lost base keys"
        for k in base:
            v = snap_rows[k]
            assert v == "base" or v.startswith("w"), v
        assert count == len(snap_rows)
        server.close()

    def test_held_session_snapshot_is_frozen(self):
        """Reads through one open transaction never move, even after
        other sessions commit cross-shard changes."""
        server = make_server()
        with server.session() as session:
            session.run(lambda s: [s.insert(TABLE, (k, "v0"))
                                   for k in range(40)])
        reader = server.session()
        reader.begin()
        before = list(reader.batch_scan(INDEX))
        with server.session() as other:
            def churn(s):
                for k in range(0, 40, 2):
                    s.update_by_key(INDEX, (k,), {"val": "v1"})
                for k in range(100, 110):
                    s.insert(TABLE, (k, "late"))
            other.run(churn)
        after = list(reader.batch_scan(INDEX))
        assert after == before == [(k, "v0") for k in range(40)]
        reader.abort()
        reader.close()
        server.close()


class TestFairness:
    def test_disjoint_shard_sessions_share_one_fifo_slot(self):
        """Sessions whose keys live on different shards still serialize
        through the one FIFO engine slot — ticks account every entry."""
        server = make_server()
        errors: list[BaseException] = []
        done: list[int] = []
        lock = threading.Lock()

        def client(slot: int) -> None:
            try:
                with server.session() as session:
                    for i in range(20):
                        session.run(lambda s, key=slot * 1000 + i:
                                    s.insert(TABLE, (key, "x")))
                    with lock:
                        done.append(slot)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sorted(done) == list(range(THREADS)), \
            "every session must finish (no starvation)"
        stats = server.stats()
        kinds = stats["scheduler"]["kinds"]
        assert stats["scheduler"]["ticks"] == sum(
            k["grants"] for k in kinds.values())
        assert kinds["oltp"]["grants"] > 0
        server.close()

    def test_scans_interleave_with_oltp(self):
        """Slice boundaries release the slot: short transactions commit
        WHILE a sliced scan is in flight (scan kind ticks recorded)."""
        server = make_server(scan_slice_rows=4)
        with server.session() as session:
            session.run(lambda s: [s.insert(TABLE, (k, "v"))
                                   for k in range(64)])
        commits = []
        errors: list[BaseException] = []

        def oltp() -> None:
            try:
                with server.session() as session:
                    for i in range(30):
                        session.run(lambda s, key=2000 + i:
                                    s.insert(TABLE, (key, "o")))
                        commits.append(i)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=oltp)
        with server.session() as session:
            session.begin()
            scan = session.batch_scan(INDEX, slice_rows=4)
            first = [next(scan) for _ in range(8)]
            t.start()
            rest = list(scan)
            session.abort()
        t.join()
        assert not errors
        assert [k for k, _v in first + rest] == sorted(
            k for k, _v in first + rest)
        assert len(first + rest) >= 64
        kinds = server.stats()["scheduler"]["kinds"]
        assert kinds["scan"]["grants"] > 1, "scan must slice the slot"
        server.close()


class TestServerMetrics:
    def test_session_and_latency_accounting(self):
        server = make_server(durable=True)
        with server.session() as session:
            session.begin()
            for k in range(10):
                session.insert(TABLE, (k, "v"))
            latency = session.commit()
        assert latency > 0.0, "durable cross-shard commit costs sim time"
        reg = server.router.obs.registry
        assert reg.counter_value("serve.sessions.opened") == 1
        assert reg.counter_value("serve.sessions.closed") == 1
        assert reg.counter_value("shard.txn.commits.cross_shard") == 1
        server.close()
