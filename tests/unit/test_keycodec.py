"""Unit tests for the order-preserving key codec."""

import pytest

from repro.errors import KeyCodecError
from repro.storage.keycodec import (decode_key, encode_key, encoded_size,
                                    key_prefix)


class TestRoundTrip:
    @pytest.mark.parametrize("key", [
        (),
        (0,),
        (-1,),
        (2 ** 63 - 1,),
        (-(2 ** 63),),
        (3.14,),
        (-2.5,),
        (0.0,),
        ("",),
        ("hello",),
        ("null\x00byte",),
        (b"raw\x00bytes",),
        (None,),
        (1, "two", 3.0, None, b"four"),
        (True, False),
    ])
    def test_roundtrip(self, key):
        decoded = decode_key(encode_key(key))
        # bools decode as ints (stable ordering is what matters)
        expected = tuple(int(v) if isinstance(v, bool) else v for v in key)
        assert decoded == expected

    def test_encoded_size_matches_encoding(self):
        for key in [(1,), ("abc",), (1, "x\x00y", 2.5), (None, b"\x00\x00")]:
            assert encoded_size(key) == len(encode_key(key))


class TestOrdering:
    @pytest.mark.parametrize("smaller,larger", [
        ((1,), (2,)),
        ((-5,), (3,)),
        ((-5,), (-4,)),
        ((1.5,), (2.5,)),
        ((-1.5,), (-0.5,)),
        ((-0.5,), (0.5,)),
        (("a",), ("b",)),
        (("a",), ("aa",)),
        (("",), ("a",)),
        (("abc",), ("abd",)),
        ((1, "a"), (1, "b")),
        ((1, "z"), (2, "a")),
        ((None,), (5,)),            # NULLS FIRST
        ((b"\x00",), (b"\x00\x01",)),
    ])
    def test_order_preserved(self, smaller, larger):
        assert encode_key(smaller) < encode_key(larger)

    def test_string_prefix_not_ambiguous(self):
        # "ab" + "c" as two columns must differ from "abc" + ""
        assert encode_key(("ab", "c")) != encode_key(("abc", ""))

    def test_zero_byte_string_ordering(self):
        keys = [("a",), ("a\x00",), ("a\x00b",), ("ab",)]
        encoded = [encode_key(k) for k in keys]
        assert encoded == sorted(encoded)


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(KeyCodecError):
            encode_key(([1, 2],))

    def test_unsupported_type_in_size(self):
        with pytest.raises(KeyCodecError):
            encoded_size(({},))

    def test_out_of_range_int(self):
        with pytest.raises(KeyCodecError):
            encode_key((2 ** 64,))

    def test_corrupt_tag(self):
        with pytest.raises(KeyCodecError):
            decode_key(b"\xff")

    def test_truncated_string(self):
        data = encode_key(("hello",))[:-1]
        with pytest.raises(KeyCodecError):
            decode_key(data)


class TestPrefix:
    def test_key_prefix_takes_leading_columns(self):
        assert key_prefix((1, 2, 3), 2) == encode_key((1, 2))

    def test_prefix_is_byte_prefix_of_full_key(self):
        full = encode_key((1, 2, 3))
        assert full.startswith(key_prefix((1, 2, 3), 2))
