"""Tests for the streaming write path (eviction/merge/bulk-load pipeline).

The streaming build must be *equivalent by construction* to the legacy
materialise-then-sort shape: same packed pages, same fence keys, same
timestamp range, bit-identical filters.  The reference implementations below
replay the pre-streaming pipeline (materialised GC → materialised
reconciliation → sequential filter ``add`` calls → list-built run) on deep
copies of the input records and the results are compared structurally.

Also covered: the tiered auto-merge policy (partition bound, window
selection), write-amplification accounting, the REGULAR_SET merge
regression, and the unique-insert negative-lookup fast path.
"""

import copy
from types import SimpleNamespace

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.eviction import reconcile_records
from repro.core.gc import GCStats, collect_for_eviction
from repro.core.merge import select_merge_window
from repro.core.records import MVPBTRecord, RecordType, record_size
from repro.core.tree import MVPBT
from repro.errors import ConfigError, UniqueViolationError
from repro.index.filters import BloomFilter, PrefixBloomFilter
from repro.index.runs import PersistedRun
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.keycodec import encode_key
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(512)
    pb = PartitionBuffer(1 << 22)
    mgr = TransactionManager(clock)

    def make(name="w", **opts):
        return MVPBT(name, PageFile(name, device, 2048, 4), pool, pb, mgr,
                     **opts)
    return mgr, make, device, pool


# --------------------------------------------------------------- reference

def rec_tuple(r: MVPBTRecord) -> tuple:
    return (r.key, r.ts, r.seq, r.rtype, r.vid, r.rid_new, r.rid_old,
            r.payload, tuple(r.set_entries))


def legacy_build(tree, file, pool, records):
    """The pre-streaming partition build: materialised list in, filters and
    timestamp range computed in separate passes, run packed from the list."""
    if tree.reconcile:
        records = reconcile_records(records)
    bloom = prefix_bloom = None
    if tree.use_bloom:
        bloom = BloomFilter(len(records), tree.bloom_fpr)
        for r in records:
            bloom.add(encode_key(r.key))
    if tree.use_prefix_bloom:
        prefix_bloom = PrefixBloomFilter(len(records), tree.prefix_bloom_fpr,
                                         tree.prefix_columns)
        for r in records:
            prefix_bloom.add_key(r.key)
    all_ts = []
    for r in records:
        if r.rtype is RecordType.REGULAR_SET:
            all_ts.extend(e[2] for e in r.set_entries)
        else:
            all_ts.append(r.ts)
    run = PersistedRun(file, pool, records,
                       key_of=lambda r: r.key,
                       size_of=lambda r: record_size(r, tree.mode),
                       fill_factor=1.0)
    return SimpleNamespace(
        run=run, bloom=bloom, prefix_bloom=prefix_bloom,
        min_ts=min(all_ts) if all_ts else 0,
        max_ts=max(all_ts) if all_ts else 0)


def page_records(run):
    return [[rec_tuple(r) for r in run.file.peek(p).records]
            for p in run.page_nos]


def assert_partitions_identical(actual, reference):
    assert page_records(actual.run) == page_records(reference.run)
    assert actual.run._fences == reference.run._fences
    assert actual.run.min_key == reference.run.min_key
    assert actual.run.max_key == reference.run.max_key
    assert actual.run.record_count == reference.run.record_count
    assert actual.run.size_bytes == reference.run.size_bytes
    assert actual.min_ts == reference.min_ts
    assert actual.max_ts == reference.max_ts
    for a, b in ((actual.bloom, reference.bloom),
                 (actual.prefix_bloom, reference.prefix_bloom)):
        if b is None:
            assert a is None
            continue
        ab = a._bits if isinstance(a, BloomFilter) else a._bloom._bits
        bb = b._bits if isinstance(b, BloomFilter) else b._bloom._bits
        assert bytes(ab) == bytes(bb)
        assert a.items_added == b.items_added


def mixed_workload(mgr, ix, keys=40, held_reader=False):
    """Inserts + cross-key updates + deletes, optionally with a snapshot
    held open so GC must keep snapshot-visible versions."""
    rids = {}
    t = mgr.begin()
    for k in range(keys):
        rid = RecordID(1, k)
        ix.insert(t, (k, k % 3), rid, vid=k + 1)
        rids[k] = rid
    t.commit()
    reader = mgr.begin() if held_reader else None
    t = mgr.begin()
    for k in range(0, keys, 2):
        nrid = RecordID(2, k)
        ix.update_nonkey(t, (k, k % 3), nrid, rids[k], vid=k + 1)
        rids[k] = nrid
    for k in range(1, keys, 5):
        ix.delete(t, (k, k % 3), rids[k], vid=k + 1)
    t.commit()
    return rids, reader


class TestEvictEquivalence:
    @pytest.mark.parametrize("held_reader", [False, True])
    def test_evict_matches_legacy_build(self, env, held_reader):
        mgr, make, device, pool = env
        ix = make()
        mixed_workload(mgr, ix, held_reader=held_reader)

        frozen = [copy.deepcopy(r) for r in ix.memory_partition.iter_records()]
        actives = mgr.active_snapshots()
        part = ix.evict_partition()
        assert part is not None

        ref_records = collect_for_eviction(frozen, actives,
                                           mgr.commit_log, ix.mode, GCStats())
        scratch = PageFile("scratch-evict", device, 2048, 4)
        reference = legacy_build(ix, scratch, pool, ref_records)
        assert_partitions_identical(part, reference)

    def test_evict_with_prefix_bloom_matches_legacy(self, env):
        mgr, make, device, pool = env
        ix = make(use_prefix_bloom=True, prefix_columns=1)
        mixed_workload(mgr, ix)
        frozen = [copy.deepcopy(r) for r in ix.memory_partition.iter_records()]
        part = ix.evict_partition()
        ref_records = collect_for_eviction(frozen, mgr.active_snapshots(),
                                           mgr.commit_log, ix.mode, GCStats())
        scratch = PageFile("scratch-prefix", device, 2048, 4)
        reference = legacy_build(ix, scratch, pool, ref_records)
        assert_partitions_identical(part, reference)

    def test_evict_accounts_write_amplification(self, env):
        mgr, make, _d, _p = env
        ix = make(enable_gc=False)
        mixed_workload(mgr, ix)
        ingested = ix.memory_partition.bytes_used
        ix.evict_partition()
        assert ix.stats.bytes_ingested == ingested
        assert ix.stats.bytes_written > 0
        assert ix.stats.write_amplification > 0.0


class TestMergeEquivalence:
    def fill(self, mgr, ix, partitions=3, rows=60):
        rids = {}
        key = 0
        for _ in range(partitions):
            t = mgr.begin()
            for _ in range(rows):
                rid = RecordID(1, key)
                ix.insert(t, (key,), rid, vid=key + 1)
                rids[key] = rid
                key += 1
            for upd in range(0, key, 3):
                nrid = RecordID(2, upd)
                ix.update_nonkey(t, (upd,), nrid, rids[upd], vid=upd + 1)
                rids[upd] = nrid
            t.commit()
            ix.evict_partition()
        return rids

    def test_merge_matches_legacy_build(self, env):
        mgr, make, device, pool = env
        ix = make()
        self.fill(mgr, ix)

        inputs = ix.persisted_partitions
        frozen = [copy.deepcopy(r) for p in inputs
                  for r in p.run.iter_all_buffered()]
        frozen.sort(key=MVPBTRecord.sort_key)
        actives = mgr.active_snapshots()

        merged = ix.merge_partitions()
        assert merged is not None

        ref_records = collect_for_eviction(frozen, actives,
                                           mgr.commit_log, ix.mode, GCStats())
        scratch = PageFile("scratch-merge", device, 2048, 4)
        reference = legacy_build(ix, scratch, pool, ref_records)
        assert_partitions_identical(merged, reference)

    def test_merge_window_start(self, env):
        mgr, make, _d, _p = env
        ix = make()
        self.fill(mgr, ix, partitions=4, rows=30)
        numbers = [p.number for p in ix.persisted_partitions]
        merged = ix.merge_partitions(2, start=1)
        assert merged is not None
        got = [p.number for p in ix.persisted_partitions]
        assert got == [numbers[0], numbers[2], numbers[3]]
        assert got == sorted(got)

    def test_merge_keeps_all_reconciled_sets(self, env):
        # regression: all REGULAR_SET records share the pseudo-VID -1; the
        # pre-streaming merge chain-reduced them together and silently
        # dropped every reconciled bundle but the newest
        mgr, make, _d, _p = env
        ix = make(reconcile=True)
        for key in (1, 2):
            t = mgr.begin()
            for v in range(3):
                ix.insert(t, (key,), RecordID(1, key * 10 + v),
                          vid=key * 100 + v + 1)
            t.commit()
            ix.evict_partition()
        reader = mgr.begin()
        assert len(ix.search(reader, (1,))) == 3
        assert len(ix.search(reader, (2,))) == 3
        assert ix.merge_partitions() is not None
        assert len(ix.search(reader, (1,))) == 3
        assert len(ix.search(reader, (2,))) == 3


class TestTieredPolicy:
    def test_select_merge_window_picks_min_bytes(self):
        parts = [SimpleNamespace(size_bytes=s)
                 for s in (900, 50, 60, 800, 40, 30)]
        assert select_merge_window(parts, 2) == (4, 2)
        assert select_merge_window(parts, 3) == (3, 3)  # 800+40+30 < rest?

    def test_select_merge_window_clamps(self):
        parts = [SimpleNamespace(size_bytes=s) for s in (10, 20)]
        assert select_merge_window(parts, 5) == (0, 2)
        assert select_merge_window(parts, 1) == (0, 2)

    def test_tiered_policy_bounds_partition_count(self, env):
        mgr, make, _d, _p = env
        ix = make(max_partitions=3, merge_fanout=2)
        key = 0
        for _round in range(8):
            t = mgr.begin()
            for _ in range(40):
                ix.insert(t, (key,), RecordID(1, key), vid=key + 1)
                key += 1
            t.commit()
            ix.evict_partition()
            assert len(ix.persisted_partitions) <= 3
        assert ix.stats.merges >= 1
        # tiered merging rewrites only small windows: total physical writes
        # stay well below the merge-everything policy's quadratic blow-up
        assert ix.stats.bytes_written < 3 * ix.stats.bytes_ingested
        reader = mgr.begin()
        assert len(ix.range_scan(reader, None, None)) == key

    def test_merge_fanout_validation(self, env):
        _mgr, make, _d, _p = env
        with pytest.raises(ConfigError):
            make(merge_fanout=1)


class TestUniqueFastPath:
    def test_duplicate_in_memory_raises(self, env):
        mgr, make, _d, _p = env
        ix = make(unique=True)
        t = mgr.begin()
        ix.insert(t, (1,), RecordID(1, 1), vid=1)
        with pytest.raises(UniqueViolationError):
            ix.insert(t, (1,), RecordID(1, 2), vid=2)

    def test_duplicate_in_persisted_raises(self, env):
        mgr, make, _d, _p = env
        ix = make(unique=True)
        t = mgr.begin()
        ix.insert(t, (1,), RecordID(1, 1), vid=1)
        t.commit()
        ix.evict_partition()
        t2 = mgr.begin()
        with pytest.raises(UniqueViolationError):
            ix.insert(t2, (1,), RecordID(1, 2), vid=2)

    def test_reinsert_after_delete_allowed(self, env):
        mgr, make, _d, _p = env
        ix = make(unique=True)
        t = mgr.begin()
        ix.insert(t, (1,), RecordID(1, 1), vid=1)
        t.commit()
        ix.evict_partition()
        t2 = mgr.begin()
        ix.delete(t2, (1,), RecordID(1, 1), vid=1)
        t2.commit()
        t3 = mgr.begin()
        ix.insert(t3, (1,), RecordID(1, 2), vid=2)  # must not raise
        t3.commit()

    def test_fresh_keys_skip_search(self, env):
        mgr, make, _d, _p = env
        ix = make(unique=True)
        t = mgr.begin()
        for k in range(50):
            ix.insert(t, (k,), RecordID(1, k), vid=k + 1)
        t.commit()
        ix.evict_partition()
        t2 = mgr.begin()
        searches_before = ix.stats.searches
        fast_before = ix.stats.unique_fast_negatives
        for k in range(1000, 1050):
            ix.insert(t2, (k,), RecordID(1, k), vid=k + 1)
        # every insert took the negative-lookup fast path: the persisted
        # partition's range rules the keys out, no full search ran
        assert ix.stats.searches == searches_before
        assert ix.stats.unique_fast_negatives == fast_before + 50
        assert ix.stats.unique_checks >= 50
