"""Unit tests for MV-PBT memory partitions (§4.3 ordering, leaf organisation)."""

import pytest

from repro.core.partition import MemoryPartition
from repro.core.records import MVPBTRecord, RecordType, ReferenceMode
from repro.storage.recordid import RecordID


@pytest.fixture
def part():
    return MemoryPartition(0, ReferenceMode.PHYSICAL, page_size=8192)


def rec(key, ts, seq, rtype=RecordType.REGULAR, vid=1):
    return MVPBTRecord((key,), ts, seq, rtype, vid,
                       rid_new=RecordID(0, seq) if rtype in
                       (RecordType.REGULAR, RecordType.REPLACEMENT) else None,
                       rid_old=RecordID(0, seq - 1) if rtype in
                       (RecordType.REPLACEMENT, RecordType.ANTI,
                        RecordType.TOMBSTONE) else None)


class TestOrdering:
    def test_records_sorted_by_key(self, part):
        for k in (5, 1, 3):
            part.insert(rec(k, 1, k))
        assert [r.key[0] for r in part.iter_records()] == [1, 3, 5]

    def test_same_key_newest_first(self, part):
        """§4.3: within a key, newer records precede older ones."""
        part.insert(rec(7, 1, 0))
        part.insert(rec(7, 3, 2))
        part.insert(rec(7, 2, 1))
        assert [r.ts for r in part.iter_records()] == [3, 2, 1]

    def test_figure11_tombstone_precedes_regular(self, part):
        """Paper Figure 11: the key-1 tombstone (TXU3) sorts before the
        key-1 replacement (TXU2) because timestamp(TXU3) > timestamp(TXU2)."""
        part.insert(rec(1, 2, 2, RecordType.REPLACEMENT))
        part.insert(rec(1, 3, 3, RecordType.TOMBSTONE))
        records = list(part.iter_records())
        assert records[0].rtype is RecordType.TOMBSTONE
        assert records[1].rtype is RecordType.REPLACEMENT

    def test_search_yields_newest_first(self, part):
        for ts in (1, 2, 3):
            part.insert(rec(7, ts, ts))
        part.insert(rec(8, 9, 9))
        hits = [r.ts for _leaf, r in part.search((7,))]
        assert hits == [3, 2, 1]


class TestLeafOrganisation:
    def test_leaves_split_when_full(self, part):
        for i in range(3000):
            part.insert(rec(i, 1, i))
        assert part.leaf_count > 1
        # leaf fences preserve global order
        records = [r.sort_key() for r in part.iter_records()]
        assert records == sorted(records)

    def test_search_across_leaf_boundaries(self, part):
        for i in range(2000):
            part.insert(rec(i % 50, i + 1, i))   # 40 versions per key
        hits = [r for _l, r in part.search((25,))]
        assert len(hits) == 40
        assert [r.ts for r in hits] == sorted((r.ts for r in hits),
                                              reverse=True)

    def test_bytes_accounting(self, part):
        assert part.bytes_used == 0
        part.insert(rec(1, 1, 0))
        assert part.bytes_used > 0
        before = part.bytes_used
        part.insert(rec(2, 1, 1))
        assert part.bytes_used > before

    def test_scan_range(self, part):
        for i in range(100):
            part.insert(rec(i, 1, i))
        got = [r.key[0] for _l, r in part.scan((10,), (20,))]
        assert got == list(range(10, 21))

    def test_scan_excludes_bounds(self, part):
        for i in range(30):
            part.insert(rec(i, 1, i))
        got = [r.key[0] for _l, r in part.scan((10,), (20,), lo_incl=False,
                                               hi_incl=False)]
        assert got == list(range(11, 20))

    def test_note_removed_accounting(self, part):
        leaf = part.insert(rec(1, 1, 0))
        size = part.bytes_used
        leaf.remove_at(0, size)
        part.note_removed(size, 1)
        assert part.bytes_used == 0
        assert part.record_count == 0


class TestDuplicateKeysAcrossLeaves:
    """Edge cases where one key's record group spans leaf boundaries — the
    ``emitted``/fence interplay in ``MemoryPartition.search`` and the
    bisect-positioned, copy-free ``MemoryPartition.scan``."""

    def _spanning_partition(self, dup_key=7, dups=600):
        part = MemoryPartition(0, ReferenceMode.PHYSICAL, page_size=2048)
        part.insert(rec(dup_key - 1, 1, 10_000))
        part.insert(rec(dup_key + 1, 1, 10_001))
        for ts in range(1, dups + 1):
            part.insert(rec(dup_key, ts, ts))
        assert part.leaf_count > 2, "duplicates must span several leaves"
        return part

    def test_search_returns_all_duplicates_newest_first(self):
        part = self._spanning_partition(dups=600)
        hits = [r.ts for _leaf, r in part.search((7,))]
        assert hits == list(range(600, 0, -1))

    def test_search_key_in_last_leaf(self):
        part = MemoryPartition(0, ReferenceMode.PHYSICAL, page_size=2048)
        for i in range(500):
            part.insert(rec(i, 1, i))
        assert part.leaf_count > 1
        assert [r.key[0] for _l, r in part.search((499,))] == [499]

    def test_search_key_equal_to_fence(self):
        """A probe equal to a leaf fence must find records in the leaf
        *before* the fence as well (duplicates straddle the split point)."""
        part = self._spanning_partition(dups=600)
        fences = [leaf.sort_keys[0] for leaf in part.leaves[1:]]
        assert any(f[0] == (7,) for f in fences), \
            "test needs a fence inside the duplicate group"
        assert len(list(part.search((7,)))) == 600

    def test_scan_lo_inside_duplicate_group(self):
        part = self._spanning_partition(dups=600)
        got = [r.key[0] for _l, r in part.scan((7,), None)]
        assert got == [7] * 600 + [8]

    def test_scan_lo_exclusive_skips_whole_group(self):
        part = self._spanning_partition(dups=600)
        got = [r.key[0] for _l, r in part.scan((7,), None, lo_incl=False)]
        assert got == [8]

    def test_scan_hi_exclusive_stops_before_group(self):
        part = self._spanning_partition(dups=600)
        got = [r.key[0] for _l, r in part.scan(None, (7,), hi_incl=False)]
        assert got == [6]

    def test_scan_lo_between_keys_starts_at_next_leaf(self):
        """lo falls beyond every record of the bisected start leaf: the scan
        must keep probing subsequent leaves rather than emit them whole."""
        part = MemoryPartition(0, ReferenceMode.PHYSICAL, page_size=2048)
        for i in range(400):
            part.insert(rec(i * 2, 1, i))          # even keys only
        assert part.leaf_count > 2
        got = [r.key[0] for _l, r in part.scan((401,), (411,))]
        assert got == [402, 404, 406, 408, 410]

    def test_scan_results_sorted_without_per_record_filtering(self):
        part = self._spanning_partition(dups=600)
        keys = [r.key[0] for _l, r in part.scan(None, None)]
        assert keys == sorted(keys)
        assert len(keys) == 602
