"""Unit tests for the YCSB key distributions."""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (LatestDistribution,
                                           ScrambledZipfian,
                                           UniformDistribution,
                                           ZipfianDistribution, fnv1a_64,
                                           make_distribution)


class TestUniform:
    def test_range(self):
        d = UniformDistribution(100, random.Random(1))
        assert all(0 <= d.next_index() < 100 for _ in range(1000))

    def test_roughly_uniform(self):
        d = UniformDistribution(10, random.Random(1))
        counts = Counter(d.next_index() for _ in range(10000))
        assert min(counts.values()) > 700

    def test_grow(self):
        d = UniformDistribution(10, random.Random(1))
        d.grow(1000)
        assert d.item_count == 1000

    def test_invalid_count(self):
        with pytest.raises(WorkloadError):
            UniformDistribution(0, random.Random(1))


class TestZipfian:
    def test_range(self):
        d = ZipfianDistribution(1000, random.Random(2))
        assert all(0 <= d.next_index() < 1000 for _ in range(5000))

    def test_skew_towards_low_indices(self):
        d = ZipfianDistribution(1000, random.Random(2))
        counts = Counter(d.next_index() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        assert top10 > 0.3 * 20000   # heavy head

    def test_grow_keeps_validity(self):
        d = ZipfianDistribution(100, random.Random(2))
        d.grow(200)
        assert all(0 <= d.next_index() < 200 for _ in range(2000))

    def test_grow_noop_for_smaller(self):
        d = ZipfianDistribution(100, random.Random(2))
        zetan = d._zetan
        d.grow(50)
        assert d._zetan == zetan


class TestScrambled:
    def test_spreads_hot_keys(self):
        d = ScrambledZipfian(1000, random.Random(3))
        counts = Counter(d.next_index() for _ in range(20000))
        hottest = counts.most_common(10)
        # hot keys exist but are not all clustered at the low end
        assert any(idx > 100 for idx, _n in hottest)

    def test_fnv_deterministic(self):
        assert fnv1a_64(42) == fnv1a_64(42)
        assert fnv1a_64(42) != fnv1a_64(43)


class TestLatest:
    def test_skew_towards_newest(self):
        d = LatestDistribution(1000, random.Random(4))
        counts = Counter(d.next_index() for _ in range(20000))
        newest10 = sum(counts[i] for i in range(990, 1000))
        assert newest10 > 0.4 * 20000

    def test_tracks_growth(self):
        d = LatestDistribution(10, random.Random(4))
        d.grow(1000)
        counts = Counter(d.next_index() for _ in range(5000))
        assert max(counts) > 900   # newest items dominate


class TestFactory:
    def test_known_kinds(self):
        rng = random.Random(5)
        for kind in ("uniform", "zipfian", "latest"):
            make_distribution(kind, 10, rng)

    def test_unknown_kind(self):
        with pytest.raises(WorkloadError):
            make_distribution("pareto", 10, random.Random(1))
