"""Unit tests for partition eviction (Algorithm 4)."""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.eviction import reconcile_records
from repro.core.records import MVPBTRecord, RecordType
from repro.core.tree import MVPBT
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.sim.trace import IOTrace
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    trace = IOTrace()
    device = SimulatedDevice(INTEL_DC_P3600, clock, trace)
    pool = BufferPool(128)
    pb = PartitionBuffer(1 << 22)
    mgr = TransactionManager(clock)

    def make(name="ev", **opts):
        return MVPBT(name, PageFile(name, device, 8192, 8), pool, pb, mgr,
                     **opts)
    return mgr, make, device, trace


class TestEviction:
    def test_partition_becomes_immutable_and_searchable(self, env):
        mgr, make, _d, _t = env
        ix = make()
        t = mgr.begin()
        for i in range(200):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        part = ix.evict_partition()
        assert part is not None
        assert part.record_count == 200
        assert ix.memory_partition.record_count == 0
        assert ix.memory_partition.number == part.number + 1
        reader = mgr.begin()
        assert [h.rid for h in ix.search(reader, (42,))] == [RecordID(1, 42)]

    def test_eviction_write_pattern_is_sequential(self, env):
        """The Figure 12c observable."""
        mgr, make, _d, trace = env
        ix = make()
        t = mgr.begin()
        for i in range(3000):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        trace.enable()
        part = ix.evict_partition()
        trace.disable()
        writes = trace.entries("W")
        assert part.run.page_count >= 8
        assert len(writes) >= 2
        assert trace.sequential_fraction("W") >= 0.9

    def test_dense_packing_beats_memory_fill(self, env):
        """Persisted partitions pack to ~100%; P_N leaves average ~67%."""
        mgr, make, _d, _t = env
        ix = make()
        t = mgr.begin()
        for i in range(3000):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        mem_leaves = ix.memory_partition.leaf_count
        part = ix.evict_partition()
        assert part.run.page_count < mem_leaves

    def test_empty_partition_eviction_is_noop(self, env):
        _mgr, make, _d, _t = env
        ix = make()
        assert ix.evict_partition() is None
        assert ix.partition_count == 1

    def test_metadata_timestamps(self, env):
        mgr, make, _d, _t = env
        ix = make()
        t1 = mgr.begin()
        ix.insert(t1, (1,), RecordID(0, 0), vid=1)
        t1.commit()
        t2 = mgr.begin()
        ix.insert(t2, (2,), RecordID(0, 1), vid=2)
        t2.commit()
        part = ix.evict_partition()
        assert part.min_ts == t1.id
        assert part.max_ts == t2.id

    def test_filters_built_on_eviction(self, env):
        mgr, make, _d, _t = env
        ix = make(use_prefix_bloom=True, prefix_columns=1)
        t = mgr.begin()
        for i in range(100):
            ix.insert(t, (i, i * 2), RecordID(0, i), vid=i + 1)
        t.commit()
        part = ix.evict_partition()
        assert part.bloom is not None and part.bloom.items_added == 100
        assert part.prefix_bloom is not None

    def test_partition_buffer_triggers_eviction(self, env):
        mgr, make, _d, _t = env
        pb = PartitionBuffer(2 * 8192)
        ix = MVPBT("small", PageFile("small", _d, 8192, 8),
                   BufferPool(64), pb, mgr)
        t = mgr.begin()
        for i in range(2000):
            ix.insert(t, (i,), RecordID(0, i), vid=i + 1)
        t.commit()
        assert ix.stats.evictions >= 1
        assert pb.evictions >= 1


class TestReconciliation:
    def _regular(self, key, ts, seq, vid):
        return MVPBTRecord((key,), ts, seq, RecordType.REGULAR, vid,
                           rid_new=RecordID(0, seq))

    def test_same_key_regulars_merged(self):
        records = [self._regular(7, ts, ts, ts) for ts in (3, 2, 1)]
        out = reconcile_records(records)
        assert len(out) == 1
        assert out[0].rtype is RecordType.REGULAR_SET
        assert [e[2] for e in out[0].set_entries] == [3, 2, 1]

    def test_single_records_untouched(self):
        records = [self._regular(k, 1, k, k) for k in (1, 2, 3)]
        out = reconcile_records(records)
        assert out == records

    def test_mixed_group_not_merged(self):
        records = [
            MVPBTRecord((7,), 3, 3, RecordType.TOMBSTONE, 2,
                        rid_old=RecordID(0, 2)),
            self._regular(7, 2, 2, 2),
            self._regular(7, 1, 1, 1),
        ]
        out = reconcile_records(records)
        assert len(out) == 3   # ordering-sensitive group is kept verbatim

    def test_end_to_end_set_search(self, env):
        mgr, make, _d, _t = env
        ix = make()   # non-unique: reconciliation on
        t = mgr.begin()
        for i in range(8):
            ix.insert(t, (77,), RecordID(5, i), vid=200 + i)
        t.commit()
        part = ix.evict_partition()
        assert part.record_count == 1
        reader = mgr.begin()
        hits = ix.search(reader, (77,))
        assert len(hits) == 8
        # a tombstone for one set member hides exactly that member
        t2 = mgr.begin()
        ix.delete(t2, (77,), RecordID(5, 3), vid=203)
        t2.commit()
        reader2 = mgr.begin()
        hits2 = ix.search(reader2, (77,))
        assert len(hits2) == 7
        assert RecordID(5, 3) not in {h.rid for h in hits2}

    def test_reconcile_disabled_for_unique(self, env):
        mgr, make, _d, _t = env
        ix = make(unique=True)
        assert not ix.reconcile
