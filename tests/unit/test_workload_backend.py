"""Unit tests: the WorkloadBackend abstraction (DESIGN.md §18).

Covers the adapter surface (``as_backend`` over every stack layer), the
hit-handle DML roundtrip on all four backends, shard-aware bulk loading,
the bounded-fanout single-slot routing satellite, the injectable
scatter-gather hook (serial vs. threaded parity, error propagation), and
the serve-layer hit APIs the backends ride on.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.obs.config import ObsConfig
from repro.serve import ServeConfig, ThreadedGather
from repro.shard import ShardConfig, ShardedDatabase
from repro.shard.router import serial_gather
from repro.workloads import (DatabaseBackend, ServerBackend,
                             ShardedBackend, ShardServerBackend,
                             WorkloadBackend, WorkloadHit, as_backend,
                             served_backend, shard_served_backend)

pytestmark = pytest.mark.workload

OBS = EngineConfig(obs=ObsConfig(enabled=True))

BACKENDS = ("database", "server", "sharded", "shard_server")


def make_backend(kind: str, shards: int = 4,
                 config: EngineConfig | None = None,
                 serve_config: ServeConfig | None = None
                 ) -> WorkloadBackend:
    config = config or EngineConfig()
    if kind == "database":
        return DatabaseBackend(Database(config))
    if kind == "server":
        return served_backend(Database(config), serve_config)
    router = ShardedDatabase(config, ShardConfig(shards=shards))
    if kind == "sharded":
        return ShardedBackend(router)
    return shard_served_backend(router, serve_config)


def create_t(backend: WorkloadBackend) -> None:
    backend.create_table("t", [("id", "int"), ("val", "str")],
                         shard_key=["id"])
    backend.create_index("ix", "t", ["id"], unique=True)


# ---------------------------------------------------------------- adapters

class TestAsBackend:
    def test_adapts_every_layer(self):
        db = Database(EngineConfig())
        assert isinstance(as_backend(db), DatabaseBackend)
        router = ShardedDatabase(EngineConfig(), ShardConfig(shards=2))
        assert isinstance(as_backend(router), ShardedBackend)
        with Database(EngineConfig()).serve() as server:
            assert isinstance(as_backend(server), ServerBackend)
        with ShardedDatabase(
                EngineConfig(), ShardConfig(shards=2)).serve() as sserver:
            assert isinstance(as_backend(sserver), ShardServerBackend)

    def test_identity_on_backends(self):
        backend = DatabaseBackend(Database(EngineConfig()))
        assert as_backend(backend) is backend

    def test_rejects_unknown(self):
        with pytest.raises(WorkloadError, match="cannot adapt"):
            as_backend(object())  # type: ignore[arg-type]

    def test_names_and_shard_counts(self):
        for kind, name, count in (("database", "database", 1),
                                  ("server", "server", 1),
                                  ("sharded", "sharded-4", 4),
                                  ("shard_server", "shard-server-4", 4)):
            with make_backend(kind) as backend:
                assert backend.name == name
                assert backend.shard_count == count


# ------------------------------------------------------------ DML roundtrip

@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendRoundtrip:
    def test_insert_select_update_delete(self, kind):
        with make_backend(kind) as backend:
            create_t(backend)
            txn = backend.begin()
            for i in range(20):
                txn.insert("t", (i, f"v{i}"))
            txn.commit()

            txn = backend.begin()
            hits = txn.select_hits("ix", (7,))
            assert len(hits) == 1
            assert isinstance(hits[0], WorkloadHit)
            assert hits[0].row == (7, "v7")
            txn.update("t", hits[0], {"val": "V7"})
            gone = txn.select_hits("ix", (3,))
            txn.delete("t", gone[0])
            txn.commit()

            txn = backend.begin()
            assert txn.select("ix", (7,)) == [(7, "V7")]
            assert txn.select("ix", (3,)) == []
            rows = txn.range_select("ix", (5,), (9,))
            assert rows == [(5, "v5"), (6, "v6"), (7, "V7"),
                            (8, "v8"), (9, "v9")]
            tagged = txn.range_hits("ix", (5,), (9,))
            assert [h.row for h in tagged] == rows
            txn.commit()

            dump = backend.dump_table("t")
            assert len(dump) == 19
            assert (7, "V7") in dump and (3, "v3") not in dump

    def test_scan_limit_and_analytic_rows(self, kind):
        with make_backend(kind) as backend:
            create_t(backend)
            backend.bulk_insert("t", [(i, f"v{i}") for i in range(50)])
            txn = backend.begin()
            assert txn.scan_limit("ix", (10,), 5) == [
                (10, "v10"), (11, "v11"), (12, "v12"),
                (13, "v13"), (14, "v14")]
            assert txn.scan_limit("ix", None, 3) == [
                (0, "v0"), (1, "v1"), (2, "v2")]
            assert txn.scan_limit("ix", (48,), 10) == [
                (48, "v48"), (49, "v49")]
            rows = txn.analytic_rows("ix", (40,), None)
            assert rows == [(i, f"v{i}") for i in range(40, 50)]
            txn.commit()

    def test_abort_discards(self, kind):
        with make_backend(kind) as backend:
            create_t(backend)
            backend.bulk_insert("t", [(1, "keep")])
            txn = backend.begin()
            txn.insert("t", (2, "drop"))
            assert txn.is_active
            txn.abort()
            assert not txn.is_active
            assert backend.dump_table("t") == [(1, "keep")]

    def test_sim_now_advances(self, kind):
        with make_backend(kind) as backend:
            create_t(backend)
            before = backend.sim_now
            backend.bulk_insert("t", [(i, "x") for i in range(30)])
            assert backend.sim_now > before
            mid = backend.sim_now
            backend.advance_clock(1.5)
            assert backend.sim_now >= mid + 1.5

    def test_vacuum_and_flush(self, kind):
        with make_backend(kind) as backend:
            create_t(backend)
            backend.bulk_insert("t", [(i, "x") for i in range(10)])
            txn = backend.begin()
            for hit in txn.range_hits("ix", None, None):
                txn.update("t", hit, {"val": "y"})
            txn.commit()
            backend.vacuum("t")
            backend.flush_all()
            assert backend.dump_table("t") == [
                (i, "y") for i in range(10)]


# ------------------------------------------------------------- sharded load

class TestShardAwareLoad:
    def test_bulk_insert_partitions_by_shard_key(self):
        router = ShardedDatabase(EngineConfig(), ShardConfig(shards=4))
        backend = ShardedBackend(router)
        create_t(backend)
        n = backend.bulk_insert("t", [(i, f"v{i}") for i in range(100)])
        assert n == 100
        per_shard = []
        rtxn = router.begin()
        positions = router.shard_key_positions("t")
        for k, db in enumerate(router.shards):
            local = db.seq_scan(rtxn.on(k), "t")
            for row in local:
                key = tuple(row[p] for p in positions)
                assert router.partitioner.shard_of(key) == k, (
                    f"row {row} loaded on wrong shard {k}")
            per_shard.append(len(local))
        router.commit(rtxn)
        assert sum(per_shard) == 100
        assert sum(1 for c in per_shard if c > 0) >= 2, (
            "bulk load left the keyspace on one shard")
        assert backend.dump_table("t") == [
            (i, f"v{i}") for i in range(100)]

    def test_bulk_insert_commits_in_chunks(self):
        router = ShardedDatabase(EngineConfig(), ShardConfig(shards=2))
        backend = ShardedBackend(router)
        create_t(backend)
        backend.bulk_insert("t", [(i, "x") for i in range(40)],
                            rows_per_txn=10)
        assert len(backend.dump_table("t")) == 40

    def test_update_moves_row_between_shards(self):
        with make_backend("sharded") as backend:
            create_t(backend)
            backend.bulk_insert("t", [(i, f"v{i}") for i in range(16)])
            router = backend.router  # type: ignore[attr-defined]
            src = router.partitioner.shard_of((5,))
            dst = next(k for k in range(4)
                       if router.partitioner.shard_of((k + 100,)) != src)
            txn = backend.begin()
            hit = txn.select_hits("ix", (5,))[0]
            assert hit.shard == src
            txn.update("t", hit, {"id": dst + 100})
            txn.commit()
            txn = backend.begin()
            assert txn.select("ix", (5,)) == []
            moved = txn.select_hits("ix", (dst + 100,))
            assert [h.row for h in moved] == [(dst + 100, "v5")]
            assert moved[0].shard == router.partitioner.shard_of(
                (dst + 100,))
            txn.commit()


# ------------------------------------------------------- bounded fan-out

class TestSingleSlotRouting:
    def make(self):
        router = ShardedDatabase(OBS, ShardConfig(shards=4))
        backend = ShardedBackend(router)
        create_t(backend)
        backend.bulk_insert("t", [(i, f"v{i}") for i in range(64)])
        return router, backend

    def test_pinned_bounds_route_to_one_shard(self):
        router, backend = self.make()
        txn = router.begin()
        plan = router.explain_scan(txn, "ix", (9,), (9,))
        router.commit(txn)
        assert plan["routing"]["plan"] == "single-slot"
        assert plan["routing"]["fanout"] == 1
        assert plan["routing"]["shards"] == [
            router.partitioner.shard_of((9,))]

    def test_open_bounds_still_scatter(self):
        router, backend = self.make()
        txn = router.begin()
        scatter = router.explain_scan(txn, "ix", (3,), (9,))
        unbounded = router.explain_scan(txn, "ix", None, None)
        exclusive = router.explain_scan(txn, "ix", (9,), (9,),
                                        hi_incl=False)
        router.commit(txn)
        for plan in (scatter, unbounded, exclusive):
            assert plan["routing"]["plan"] == "scatter-merge"
            assert plan["routing"]["fanout"] == 4

    def test_slot_routed_metric_and_results(self):
        router, backend = self.make()
        reg = router.obs.registry
        before = reg.counter_value("shard.queries.slot_routed")
        txn = backend.begin()
        rows = txn.range_select("ix", (9,), (9,))
        txn.commit()
        assert rows == [(9, "v9")]
        assert reg.counter_value("shard.queries.slot_routed") == before + 1

    def test_single_slot_matches_scatter_results(self):
        router, backend = self.make()
        txn = backend.begin()
        for key in range(64):
            pinned = txn.range_select("ix", (key,), (key,))
            wide = [r for r in txn.range_select("ix", None, None)
                    if r[0] == key]
            assert pinned == wide
        txn.commit()


# ------------------------------------------------------------- gather hook

class TestGatherHook:
    def test_serial_gather_runs_in_order(self):
        order = []

        def mk(i):
            def task():
                order.append(i)
                return i * i
            return task

        assert serial_gather([mk(i) for i in range(5)]) == [
            0, 1, 4, 9, 16]
        assert order == [0, 1, 2, 3, 4]

    def test_threaded_gather_matches_serial(self):
        tasks = [lambda i=i: i * 3 for i in range(20)]
        gather = ThreadedGather()
        assert gather(tasks) == serial_gather(tasks)
        assert gather.calls == 1
        assert gather.tasks_run == 20

    def test_threaded_gather_short_circuits_small(self):
        gather = ThreadedGather()
        assert gather([]) == []
        assert gather([lambda: 7]) == [7]
        assert gather.calls == 2
        assert gather.tasks_run == 1

    def test_threaded_gather_propagates_first_error(self):
        def boom_at(j):
            def task():
                if j in (1, 3):
                    raise WorkloadError(f"boom{j}")
                return j
            return task

        gather = ThreadedGather()
        with pytest.raises(WorkloadError, match="boom1"):
            gather([boom_at(j) for j in range(5)])

    def test_wrap_hook_sees_every_task(self):
        seen = []

        def wrap(i, task):
            seen.append(i)
            return task()

        gather = ThreadedGather(wrap=wrap)
        assert gather([lambda i=i: i for i in range(6)]) == list(range(6))
        assert sorted(seen) == list(range(6))

    def test_router_results_identical_under_threaded_gather(self):
        serial = make_backend("sharded")
        create_t(serial)
        serial.bulk_insert("t", [(i, f"v{i}") for i in range(80)])
        threaded = make_backend("sharded")
        create_t(threaded)
        threaded.bulk_insert("t", [(i, f"v{i}") for i in range(80)])
        threaded.router.gather = ThreadedGather()  # type: ignore[attr-defined]
        ts, tt = serial.begin(), threaded.begin()
        assert (ts.range_select("ix", None, None)
                == tt.range_select("ix", None, None))
        assert ts.select("ix", (33,)) == tt.select("ix", (33,))
        assert (ts.scan_limit("ix", (10,), 25)
                == tt.scan_limit("ix", (10,), 25))
        ts.commit()
        tt.commit()

    def test_shard_server_installs_and_restores_gather(self):
        router = ShardedDatabase(EngineConfig(), ShardConfig(shards=2))
        server = router.serve(ServeConfig(parallel_scatter_gather=True))
        assert isinstance(router.gather, ThreadedGather)
        server.close()
        assert router.gather is serial_gather

    def test_shard_server_default_stays_serial(self):
        router = ShardedDatabase(EngineConfig(), ShardConfig(shards=2))
        with router.serve() as _server:
            assert router.gather is serial_gather


# ------------------------------------------------------ serve-layer hit API

class TestServeHitAPIs:
    def test_session_hit_dml(self):
        db = Database(EngineConfig())
        db.create_table("t", [("id", "int"), ("val", "str")])
        db.create_index("ix", "t", ["id"], kind="mvpbt")
        with db.serve() as server, server.session() as session:
            session.begin()
            for i in range(10):
                session.insert("t", (i, f"v{i}"))
            session.commit()
            session.begin()
            hits = session.select_hits("ix", (4,))
            session.update_row("t", hits[0].rid, hits[0].version,
                               {"val": "V4"})
            dead = session.select_hits("ix", (5,))
            session.delete_row("t", dead[0].rid, dead[0].version)
            session.commit()
            session.begin()
            assert session.select("ix", (4,)) == [(4, "V4")]
            assert session.select("ix", (5,)) == []
            ranged = session.range_hits("ix", (2,), (4,))
            assert [h.row for h in ranged] == [
                (2, "v2"), (3, "v3"), (4, "V4")]
            session.commit()

    def test_shard_session_hit_dml(self):
        router = ShardedDatabase(EngineConfig(), ShardConfig(shards=2))
        router.create_table("t", [("id", "int"), ("val", "str")], "sias")
        router.create_index("ix", "t", ["id"], kind="mvpbt")
        with router.serve() as server, server.session() as session:
            session.begin()
            for i in range(10):
                session.insert("t", (i, f"v{i}"))
            session.commit()
            session.begin()
            tagged = session.select_hits("ix", (4,))
            shard, hit = tagged[0]
            assert shard == router.partitioner.shard_of((4,))
            session.update_hit("t", shard, hit, {"val": "V4"})
            dshard, dhit = session.select_hits("ix", (5,))[0]
            session.delete_hit("t", dshard, dhit)
            session.commit()
            session.begin()
            assert session.select("ix", (4,)) == [(4, "V4")]
            assert session.select("ix", (5,)) == []
            ranged = session.range_hits("ix", (2,), (4,))
            assert [h.row for _s, h in ranged] == [
                (2, "v2"), (3, "v3"), (4, "V4")]
            session.commit()

    def test_server_backend_pools_sessions(self):
        with make_backend("server") as backend:
            create_t(backend)
            backend.bulk_insert("t", [(1, "a"), (2, "b")])
            olap = backend.begin()
            oltp = backend.begin()   # olap still open: second session
            assert backend.server.active_sessions == 2  # type: ignore[attr-defined]
            oltp.insert("t", (3, "c"))
            oltp.commit()
            # olap's snapshot predates the insert
            assert len(olap.analytic_rows("ix", None, None)) == 2
            olap.commit()
            reused = backend.begin()  # pool reuse, no third session
            assert backend.server.active_sessions == 2  # type: ignore[attr-defined]
            reused.commit()
