"""Unit tests for the indirection layer."""

import pytest

from repro.config import CostModel
from repro.errors import TupleNotFoundError
from repro.sim.clock import SimClock
from repro.storage.recordid import RecordID
from repro.table.indirection import IndirectionLayer


class TestIndirection:
    def test_set_and_resolve(self):
        layer = IndirectionLayer()
        layer.set(1, RecordID(5, 2))
        assert layer.resolve(1) == RecordID(5, 2)

    def test_update_entry_point(self):
        layer = IndirectionLayer()
        layer.set(1, RecordID(5, 2))
        layer.set(1, RecordID(9, 0))
        assert layer.resolve(1) == RecordID(9, 0)
        assert layer.updates == 2

    def test_unknown_vid_raises(self):
        with pytest.raises(TupleNotFoundError):
            IndirectionLayer().resolve(42)

    def test_try_resolve_returns_none(self):
        assert IndirectionLayer().try_resolve(42) is None

    def test_remove(self):
        layer = IndirectionLayer()
        layer.set(1, RecordID(0, 0))
        layer.remove(1)
        assert 1 not in layer
        assert layer.try_resolve(1) is None

    def test_len_and_contains(self):
        layer = IndirectionLayer()
        layer.set(1, RecordID(0, 0))
        layer.set(2, RecordID(0, 1))
        assert len(layer) == 2
        assert 1 in layer

    def test_resolution_charges_cpu(self):
        clock = SimClock()
        cost = CostModel()
        layer = IndirectionLayer(clock, cost)
        layer.set(1, RecordID(0, 0))
        before = clock.now
        layer.resolve(1)
        assert clock.now == pytest.approx(before + cost.indirection_lookup)

    def test_counters(self):
        layer = IndirectionLayer()
        layer.set(1, RecordID(0, 0))
        layer.resolve(1)
        layer.try_resolve(2)
        assert layer.resolutions == 2

    def test_remove_charges_cpu_like_set(self):
        clock = SimClock()
        cost = CostModel()
        layer = IndirectionLayer(clock, cost)
        layer.set(1, RecordID(0, 0))
        before = clock.now
        layer.remove(1)
        assert clock.now == pytest.approx(before + cost.indirection_lookup)
        assert layer.updates == 2

    def test_remove_unknown_vid_still_counts_as_update(self):
        layer = IndirectionLayer()
        layer.remove(99)  # vacuum may race an already-dropped chain
        assert layer.updates == 1
        assert len(layer) == 0
