"""Unit tests for the heap (PG/HOT) version store."""

import pytest

from repro.buffer.pool import BufferPool
from repro.errors import TupleNotFoundError, WriteConflictError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.table.heap import HeapTable
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    pool = BufferPool(64)
    table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
    return TransactionManager(clock), table


class TestInsert:
    def test_insert_assigns_vids(self, env):
        mgr, table = env
        t = mgr.begin()
        vid1, _ = table.insert(t, (1, "a"))
        vid2, _ = table.insert(t, (2, "b"))
        assert vid2 == vid1 + 1

    def test_fetch_returns_version(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        v = table.fetch(rid)
        assert v.data == (1, "a")
        assert v.ts_create == t.id
        assert v.ts_invalidate is None

    def test_fetch_bad_rid(self, env):
        _mgr, table = env
        from repro.storage.recordid import RecordID
        with pytest.raises(TupleNotFoundError):
            table.fetch(RecordID(999, 0))


class TestUpdate:
    def test_hot_update_stays_on_page(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        new_rid = table.update(t, rid, (1, "b"))
        assert new_rid.page == rid.page
        assert table.hot_updates == 1
        assert table.is_hot(rid, new_rid)

    def test_two_point_invalidation_stamps_predecessor(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        t1.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        old = table.fetch(rid)
        assert old.ts_invalidate == t2.id
        assert old.next_rid is not None

    def test_forced_cold_update(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        table.update(t, rid, (2, "a"), allow_hot=False)
        assert table.cold_updates == 1

    def test_write_conflict_detected(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        t1.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        t3 = mgr.begin()
        with pytest.raises(WriteConflictError):
            table.update(t3, rid, (1, "c"))

    def test_update_after_aborted_invalidator_succeeds(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        t1.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.abort()
        t3 = mgr.begin()
        table.update(t3, rid, (1, "c"))   # must not raise
        t3.commit()
        t4 = mgr.begin()
        resolved = table.visible_version(t4, rid)
        assert resolved is not None and resolved[1].data == (1, "c")


class TestVisibility:
    def test_old_snapshot_sees_old_version(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        t1.commit()
        reader = mgr.begin()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        resolved = table.visible_version(reader, rid)
        assert resolved is not None and resolved[1].data == (1, "a")

    def test_new_snapshot_walks_to_newest(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        t1.commit()
        for value in ("b", "c", "d"):
            t = mgr.begin()
            hits = table.visible_version(t, rid)
            table.update(t, hits[0], (1, value))
            t.commit()
        reader = mgr.begin()
        resolved = table.visible_version(reader, rid)
        assert resolved[1].data == (1, "d")

    def test_uncommitted_version_invisible(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        reader = mgr.begin()
        assert table.visible_version(reader, rid) is None

    def test_delete_hides_tuple(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        t1.commit()
        old_reader = mgr.begin()
        t2 = mgr.begin()
        table.delete(t2, rid)
        t2.commit()
        new_reader = mgr.begin()
        assert table.visible_version(old_reader, rid)[1].data == (1, "a")
        assert table.visible_version(new_reader, rid) is None


class TestScans:
    def test_scan_visible_filters_versions(self, env):
        mgr, table = env
        t = mgr.begin()
        rids = {}
        for i in range(10):
            _, rids[i] = table.insert(t, (i, "v0"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rids[0], (0, "v1"))
        t2.commit()
        reader = mgr.begin()
        rows = sorted(row for _rid, row in table.scan_visible(reader))
        assert len(rows) == 10
        assert rows[0] == (0, "v1")

    def test_scan_versions_counts_all(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        table.update(t, rid, (1, "b"))
        t.commit()
        assert len(list(table.scan_versions())) == 2


class TestSmallPoolDurability:
    """Regression: heap mutations must survive buffer-pool eviction
    (a page dropped without write-back loses committed data)."""

    def test_inserts_survive_pool_pressure(self):
        from repro.buffer.pool import BufferPool
        from repro.sim.clock import SimClock
        from repro.sim.device import SimulatedDevice
        from repro.sim.profiles import UNIT_TEST_PROFILE
        from repro.storage.pagefile import PageFile
        from repro.table.heap import HeapTable
        from repro.txn.manager import TransactionManager
        clock = SimClock()
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        pool = BufferPool(4)   # tiny: every page gets evicted repeatedly
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        mgr = TransactionManager(clock)
        t = mgr.begin()
        rids = {}
        for i in range(500):
            _, rids[i] = table.insert(t, (i, "x" * 200))
        for i in range(0, 500, 5):
            rids[i] = table.update(t, rids[i], (i, "y" * 200))
        t.commit()
        reader = mgr.begin()
        for i in (0, 5, 123, 250, 499):
            resolved = table.visible_version(reader, rids[i])
            assert resolved is not None, i
            expected = "y" * 200 if i % 5 == 0 else "x" * 200
            assert resolved[1].data == (i, expected)
