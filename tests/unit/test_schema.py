"""Unit tests for schemas and the catalog."""

import pytest

from repro.engine.catalog import Catalog, IndexInfo, TableInfo
from repro.engine.schema import Column, Schema
from repro.errors import CatalogError


class TestColumn:
    def test_valid_types(self):
        for t in ("int", "float", "str"):
            Column("c", t)

    def test_invalid_type(self):
        with pytest.raises(CatalogError):
            Column("c", "blob")


class TestSchema:
    def test_from_tuples(self):
        s = Schema([("a", "int"), ("b", "str")])
        assert s.names == ["a", "b"]
        assert len(s) == 2

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([("a", "int"), ("a", "str")])

    def test_position(self):
        s = Schema([("a", "int"), ("b", "str")])
        assert s.position("b") == 1
        with pytest.raises(CatalogError):
            s.position("z")

    def test_validate_row(self):
        s = Schema([("a", "int"), ("b", "str")])
        assert s.validate_row([1, "x"]) == (1, "x")

    def test_validate_row_wrong_arity(self):
        s = Schema([("a", "int")])
        with pytest.raises(CatalogError):
            s.validate_row([1, 2])

    def test_validate_row_wrong_type(self):
        s = Schema([("a", "int")])
        with pytest.raises(CatalogError):
            s.validate_row(["not-int"])

    def test_int_accepted_for_float_column(self):
        s = Schema([("a", "float")])
        assert s.validate_row([3]) == (3,)

    def test_none_allowed(self):
        s = Schema([("a", "int")])
        assert s.validate_row([None]) == (None,)

    def test_extract(self):
        s = Schema([("a", "int"), ("b", "str"), ("c", "int")])
        assert s.extract((1, "x", 3), s.positions(["c", "a"])) == (3, 1)

    def test_apply_updates(self):
        s = Schema([("a", "int"), ("b", "str")])
        assert s.apply_updates((1, "x"), {"b": "y"}) == (1, "y")


class TestCatalog:
    def _table_info(self, name="t"):
        return TableInfo(name=name, schema=Schema([("a", "int")]),
                         store=None, file=None, storage_kind="sias")

    def test_add_and_get_table(self):
        cat = Catalog()
        cat.add_table(self._table_info())
        assert cat.table("t").name == "t"

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.add_table(self._table_info())
        with pytest.raises(CatalogError):
            cat.add_table(self._table_info())

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_indexes_of(self):
        cat = Catalog()
        cat.add_table(self._table_info())
        info = IndexInfo(name="i", table="t", columns=["a"], positions=[0],
                         kind="btree", unique=False,
                         reference=__import__(
                             "repro.core.records",
                             fromlist=["ReferenceMode"]).ReferenceMode.PHYSICAL,
                         index=None)
        cat.add_index(info)
        assert [ix.name for ix in cat.indexes_of("t")] == ["i"]

    def test_unknown_index(self):
        with pytest.raises(CatalogError):
            Catalog().index("nope")
