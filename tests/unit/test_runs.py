"""Unit tests for persisted runs."""

import pytest

from repro.buffer.pool import BufferPool
from repro.errors import StorageError
from repro.index.runs import PersistedRun
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(32)
    file = PageFile("run", device, 8192, 8)
    return device, pool, file


def _make_run(pool, file, records, fill=1.0):
    return PersistedRun(file, pool, records,
                        key_of=lambda r: r[0],
                        size_of=lambda r: 64,
                        fill_factor=fill)


def _records(n, dup_every=0):
    out = []
    for i in range(n):
        out.append(((i,), f"val-{i}"))
        if dup_every and i % dup_every == 0:
            out.append(((i,), f"dup-{i}"))
    return out


class TestBuild:
    def test_empty_run(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, [])
        assert run.record_count == 0
        assert run.min_key is None
        assert list(run.search((1,))) == []
        assert list(run.scan(None, None)) == []

    def test_metadata(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(500))
        assert run.record_count == 500
        assert run.min_key == (0,)
        assert run.max_key == (499,)
        assert run.page_count > 1

    def test_fill_factor_changes_page_count(self, env):
        _d, pool, file = env
        dense = _make_run(pool, file, _records(500), fill=1.0)
        sparse = _make_run(pool, file, _records(500), fill=0.5)
        assert sparse.page_count > dense.page_count

    def test_bad_fill_factor(self, env):
        _d, pool, file = env
        with pytest.raises(StorageError):
            _make_run(pool, file, _records(10), fill=0.0)

    def test_build_writes_sequentially(self, env):
        device, pool, file = env
        _make_run(pool, file, _records(2000))
        assert device.stats.seq_writes >= device.stats.rand_writes


class TestSearch:
    def test_point_search(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(500))
        assert [v for _k, v in run.search((250,))] == ["val-250"]

    def test_search_out_of_range_is_free(self, env):
        device, pool, file = env
        run = _make_run(pool, file, _records(100))
        reads_before = device.stats.reads
        assert list(run.search((5000,))) == []
        assert device.stats.reads == reads_before

    def test_duplicates_returned_in_run_order(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(300, dup_every=10))
        values = [v for _k, v in run.search((100,))]
        assert values == ["val-100", "dup-100"]

    def test_duplicates_spanning_pages(self, env):
        _d, pool, file = env
        records = [((1,), f"v{i}") for i in range(400)]   # one huge key group
        run = _make_run(pool, file, records)
        assert run.page_count > 1
        assert len(list(run.search((1,)))) == 400

    def test_overlaps(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(100))
        assert run.overlaps((50,), (60,))
        assert run.overlaps(None, (0,))
        assert not run.overlaps((200,), None)
        assert not run.overlaps(None, (-1,))


class TestScan:
    def test_range_scan_inclusive(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(500))
        got = [k[0] for k, _v in run.scan((10,), (20,))]
        assert got == list(range(10, 21))

    def test_range_scan_exclusive_bounds(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(100))
        got = [k[0] for k, _v in run.scan((10,), (20,), lo_incl=False,
                                          hi_incl=False)]
        assert got == list(range(11, 20))

    def test_unbounded_scan(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(100))
        assert len(list(run.scan(None, None))) == 100

    def test_iter_all_matches_input_order(self, env):
        _d, pool, file = env
        records = _records(300)
        run = _make_run(pool, file, records)
        assert list(run.iter_all()) == records

    def test_iter_all_sequential_charges_extent_reads(self, env):
        device, pool, file = env
        run = _make_run(pool, file, _records(2000))
        reads_before = device.stats.reads
        assert len(list(run.iter_all_sequential())) == 2000
        extent_reads = device.stats.reads - reads_before
        assert extent_reads <= run.page_count  # coarse-grained, not per page


class TestFree:
    def test_free_releases_pages(self, env):
        _d, pool, file = env
        run = _make_run(pool, file, _records(200))
        pages = run.page_count
        allocated_before = file.allocated_pages
        run.free()
        assert file.allocated_pages == allocated_before - pages


class TestDuplicatesAcrossPages:
    """One key's duplicate group spanning several leaf pages — the fence /
    ``bisect`` edge cases in ``PersistedRun.search`` and the copy-free,
    index-based ``PersistedRun.scan``."""

    def _dup_run(self, pool, file, dups=400):
        # 64-byte records on 8 KiB pages: ~127 records per page, so the
        # duplicate group spans >= 3 pages with pages fenced by the dup key
        records = ([((5,), "below")]
                   + [((7,), f"dup-{i}") for i in range(dups)]
                   + [((9,), "above")])
        run = _make_run(pool, file, records)
        assert run.page_count >= 3
        return run

    def test_search_yields_every_duplicate(self, env):
        _d, pool, file = env
        run = self._dup_run(pool, file)
        hits = [v for _k, v in run.search((7,))]
        assert hits == [f"dup-{i}" for i in range(400)]

    def test_search_key_on_page_boundary_fences(self, env):
        _d, pool, file = env
        run = self._dup_run(pool, file)
        dup_fences = [f for f in run._fences if f == (7,)]
        assert len(dup_fences) >= 2, "group must supply several page fences"
        assert len(list(run.search((7,)))) == 400

    def test_search_first_and_last_keys(self, env):
        _d, pool, file = env
        run = self._dup_run(pool, file)
        assert [v for _k, v in run.search((5,))] == ["below"]
        assert [v for _k, v in run.search((9,))] == ["above"]
        assert list(run.search((6,))) == []
        assert list(run.search((8,))) == []

    def test_scan_lo_exclusive_skips_spanning_group(self, env):
        _d, pool, file = env
        run = self._dup_run(pool, file)
        got = [v for _k, v in run.scan((7,), None, lo_incl=False)]
        assert got == ["above"]

    def test_scan_lo_inclusive_from_group_start(self, env):
        _d, pool, file = env
        run = self._dup_run(pool, file)
        got = [k for k, _v in run.scan((7,), (7,))]
        assert got == [(7,)] * 400

    def test_scan_hi_exclusive_stops_before_group(self, env):
        _d, pool, file = env
        run = self._dup_run(pool, file)
        got = [v for _k, v in run.scan(None, (7,), hi_incl=False)]
        assert got == ["below"]
