"""Zone-map pruning and the batched scan pipeline's skip accounting.

Covers the PR's pruning contract end to end: selective range scans skip
persisted partitions whose fence-key range is disjoint from the scan
bounds (``partitions_skipped_range`` nonzero), page-level timestamp zones
skip pages invisible to the snapshot, the zone map survives manifest
state round-trips and crash recovery, and the new counters surface in
``describe()`` / ``explain_scan``.
"""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.config import EngineConfig
from repro.core.tree import MVPBT
from repro.durability.manifest import (IndexManifest, ManifestState,
                                       PartitionMeta, decode_state,
                                       encode_state)
from repro.durability.recovery import restore_partition
from repro.engine.database import Database
from repro.index.filters import ZoneMap, ZoneMapBuilder
from repro.obs import ObsConfig, check_invariants
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    pool = BufferPool(256)
    pb = PartitionBuffer(1 << 22)
    mgr = TransactionManager(clock)

    def make(name="ix", **opts):
        return MVPBT(name, PageFile(name, device, 8192, 8), pool, pb, mgr,
                     **opts)
    return mgr, make


def build_disjoint_partitions(mgr, make, parts=4, per=50):
    """``parts`` persisted partitions over disjoint key ranges + a P_N."""
    ix = make()
    for p in range(parts):
        t = mgr.begin()
        for i in range(p * per, (p + 1) * per):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()
    t = mgr.begin()
    for i in range(0, parts * per, 16):
        ix.update_nonkey(t, (i,), RecordID(2, i), RecordID(1, i), vid=i + 1)
    t.commit()
    return ix


class TestPartitionPruning:
    def test_disjoint_partitions_are_skipped(self, env):
        """Regression: a selective scan must not consult partitions whose
        fence-key range is disjoint from the scan bounds."""
        mgr, make = env
        ix = build_disjoint_partitions(mgr, make)
        reader = mgr.begin()
        skipped0 = ix.stats.partitions_skipped_range
        hits = ix.range_scan(reader, (60,), (80,))
        assert [h.key[0] for h in hits] == list(range(60, 81))
        # partitions [0,50), [100,150), [150,200) are disjoint from [60,80]
        assert ix.stats.partitions_skipped_range - skipped0 == 3

    def test_full_scan_skips_nothing(self, env):
        mgr, make = env
        ix = build_disjoint_partitions(mgr, make)
        reader = mgr.begin()
        skipped0 = (ix.stats.partitions_skipped_range
                    + ix.stats.partitions_skipped_bloom
                    + ix.stats.partitions_skipped_mints)
        hits = ix.range_scan(reader, None, None)
        assert len(hits) == 200
        assert (ix.stats.partitions_skipped_range
                + ix.stats.partitions_skipped_bloom
                + ix.stats.partitions_skipped_mints) == skipped0

    def test_batch_and_record_paths_agree_on_selective_scan(self, env):
        mgr, make = env
        ix = build_disjoint_partitions(mgr, make)
        reader = mgr.begin()
        batch = ix.range_scan(reader, (60,), (80,))
        ix.batch_scan = False
        try:
            record = ix.range_scan(reader, (60,), (80,))
        finally:
            ix.batch_scan = True
        assert batch == record


class TestPageZones:
    def test_pages_skipped_by_min_ts(self, env):
        """Pages whose entire timestamp zone is newer than the snapshot
        are skipped without decoding."""
        mgr, make = env
        ix = make()
        t = mgr.begin()
        for i in range(400):                    # old keys, old timestamps
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        reader = mgr.begin()                    # snapshot before the rest
        t = mgr.begin()
        for i in range(400, 800):               # new keys, newer timestamps
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()                    # one partition, mixed pages
        skipped0 = ix.stats.pages_skipped_mints
        hits = ix.range_scan(reader, None, None)
        assert [h.key[0] for h in hits] == list(range(400))
        assert ix.stats.pages_skipped_mints > skipped0

    def test_zone_map_built_on_eviction(self, env):
        mgr, make = env
        ix = build_disjoint_partitions(mgr, make)
        for part in ix.persisted_partitions:
            zone = part.zone_map
            assert zone is not None
            assert len(zone.page_min_ts) == part.run.page_count
            assert all(lo <= hi for lo, hi in
                       zip(zone.page_min_ts, zone.page_max_ts))
            # insert-only partitions are REGULAR/unflagged throughout
            assert all(zone.page_pure)


class TestZoneMapState:
    def test_state_roundtrip(self):
        builder = ZoneMapBuilder()
        builder.add_page(5, 20, True, 4096)
        builder.add_page(1, 99, False, 1024)
        zone = builder.build()
        again = ZoneMap.from_state(*zone.to_state())
        assert list(again.page_min_ts) == [5, 1]
        assert list(again.page_max_ts) == [20, 99]
        assert bytes(again.page_pure) == b"\x01\x00"
        assert list(again.page_bytes) == [4096, 1024]

    def test_manifest_roundtrip(self):
        builder = ZoneMapBuilder()
        builder.add_page(3, 7, True, 512)
        meta = PartitionMeta(0, 10, 512, 3, 7, [0], [("a",)], ("a",),
                             ("z",), zone_state=builder.build().to_state())
        state = ManifestState(
            txid_watermark=9,
            indexes={"ix": IndexManifest("ix", 1, 10, 0, [meta])})
        back = decode_state(encode_state(state)).indexes["ix"].partitions[0]
        assert back.zone_state == meta.zone_state
        # absent zone maps (older manifests) stay absent
        meta_old = PartitionMeta(0, 10, 512, 3, 7, [0], [("a",)], ("a",),
                                 ("z",))
        state.indexes["ix"].partitions[0] = meta_old
        back = decode_state(encode_state(state)).indexes["ix"].partitions[0]
        assert back.zone_state is None

    def test_restored_partition_prunes_like_the_original(self, env):
        """After crash recovery the zone map keeps pruning: selective
        scans on the re-attached partition skip the same pages."""
        mgr, make = env
        ix = build_disjoint_partitions(mgr, make)
        part = ix.persisted_partitions[0]
        meta = PartitionMeta(
            number=part.number, record_count=part.record_count,
            size_bytes=part.size_bytes, min_ts=part.min_ts,
            max_ts=part.max_ts, page_nos=list(part.run.page_nos),
            fences=list(part.run.fence_keys), min_key=part.run.min_key,
            max_key=part.run.max_key,
            zone_state=part.zone_map.to_state())
        restored = restore_partition(meta, ix.file, ix.pool)
        assert restored.zone_map is not None
        assert restored.zone_map.to_state() == part.zone_map.to_state()


class TestObservabilitySurface:
    def _db(self):
        db = Database(EngineConfig(buffer_pool_pages=64,
                                   partition_buffer_bytes=4096,
                                   obs=ObsConfig(enabled=True)))
        db.create_table("t", [("k", "int"), ("v", "int")], storage="sias")
        db.create_index("ix", "t", ["k"], kind="mvpbt")
        txn = db.begin()
        for i in range(300):
            db.insert(txn, "t", (i, i * 2))
            if (i + 1) % 100 == 0:
                txn.commit()
                db.catalog.index("ix").mvpbt.evict_partition()
                txn = db.begin()
        txn.commit()
        return db

    def test_explain_scan_reports_pipeline_and_prune_reasons(self):
        db = self._db()
        txn = db.begin()
        profile = db.explain_scan(txn, "ix", (120,), (180,))
        txn.commit()
        pipeline = profile["scan_pipeline"]
        assert pipeline["batch_scan"] is True
        assert pipeline["pages_batch_decoded"] >= 1
        assert pipeline["zero_copy_bytes"] > 0
        reasons = profile["partitions"]["prune_reasons"]
        assert set(reasons) == {"bloom", "zone-map", "min-ts"}
        # [120,180] is disjoint from partitions [0,100) and [200,300)
        assert reasons["zone-map"] == 2
        assert (reasons["bloom"] + reasons["zone-map"] + reasons["min-ts"]
                == profile["partitions"]["total"]
                - profile["partitions"]["consulted"])

    def test_describe_read_path_and_registry_invariants(self):
        db = self._db()
        txn = db.begin()
        db.range_select(txn, "ix", (0,), (300,))
        db.range_select(txn, "ix", (250,), (280,))
        txn.commit()
        tree = db.catalog.index("ix").mvpbt
        info = tree.describe()
        read_path = info["read_path"]
        assert read_path["batch_scan"] is True
        assert read_path["pages_batch_decoded"] >= 1
        assert read_path["zero_copy_bytes"] > 0
        for part in info["persisted_partitions"]:
            assert part["zone_map_bytes"] > 0
        assert check_invariants(db) == []
