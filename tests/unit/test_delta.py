"""Unit tests for the delta-record version store (paper §3.1 alternative)."""

import pytest

from repro.buffer.pool import BufferPool
from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import TupleNotFoundError, WriteConflictError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.table.delta import DeltaTable
from repro.table.vacuum import vacuum_delta
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    pool = BufferPool(64)
    table = DeltaTable("d", PageFile("d", device, 8192, 8),
                       PageFile("d.pool", device, 8192, 8), pool)
    return TransactionManager(clock), table


class TestInPlaceSemantics:
    def test_update_keeps_rid_stable(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        new_rid = table.update(t, rid, (1, "b"))
        assert new_rid == rid
        assert table.fetch(rid).data == (1, "b")

    def test_delta_captures_only_changed_columns(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a", 3.0))
        table.update(t, rid, (1, "b", 3.0))
        t.commit()
        main = table.fetch(rid)
        delta = table._read_delta(main.prev_rid)
        assert delta.old_values == {1: "a"}

    def test_write_conflict_detected(self, env):
        mgr, table = env
        t1 = mgr.begin()
        _, rid = table.insert(t1, (1, "a"))
        t1.commit()
        t2 = mgr.begin()
        t3 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        with pytest.raises(WriteConflictError):
            table.update(t3, rid, (1, "c"))

    def test_update_deleted_tuple_rejected(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        table.delete(t, rid)
        with pytest.raises(TupleNotFoundError):
            table.update(t, rid, (1, "b"))


class TestReconstruction:
    def test_old_snapshot_reconstructs_old_version(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "v0", 10.0))
        t.commit()
        reader = mgr.begin()
        for i in range(5):
            t = mgr.begin()
            table.update(t, rid, (1, f"v{i + 1}", 10.0 + i))
            t.commit()
        resolved = table.visible_version(reader, rid)
        assert resolved is not None
        assert resolved[1].data == (1, "v0", 10.0)
        assert table.reconstructions == 1
        assert table.deltas_applied == 5     # the §3.6 reconstruction cost

    def test_intermediate_snapshots(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "v0"))
        t.commit()
        snaps = []
        for i in range(4):
            snaps.append(mgr.begin())
            t = mgr.begin()
            table.update(t, rid, (1, f"v{i + 1}"))
            t.commit()
        for i, snap in enumerate(snaps):
            assert table.visible_version(snap, rid)[1].data == (1, f"v{i}")

    def test_deleted_tuple_invisible_to_new_visible_to_old(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        old_reader = mgr.begin()
        t2 = mgr.begin()
        table.delete(t2, rid)
        t2.commit()
        new_reader = mgr.begin()
        assert table.visible_version(new_reader, rid) is None
        assert table.visible_version(old_reader, rid)[1].data == (1, "a")

    def test_uncommitted_update_invisible(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        reader = mgr.begin()
        assert table.visible_version(reader, rid)[1].data == (1, "a")
        assert table.visible_version(t2, rid)[1].data == (1, "b")


class TestVacuumDelta:
    def test_unreachable_deltas_cut(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "v0"))
        t.commit()
        for i in range(10):
            t = mgr.begin()
            table.update(t, rid, (1, f"v{i + 1}"))
            t.commit()
        result = vacuum_delta(table, mgr)
        assert result.versions_removed >= 1
        main = table.fetch(rid)
        assert main.prev_rid is None     # chain fully trimmed (no readers)
        fresh = mgr.begin()
        assert table.visible_version(fresh, rid)[1].data == (1, "v10")

    def test_active_reader_blocks_trim(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "v0"))
        t.commit()
        reader = mgr.begin()
        for i in range(5):
            t = mgr.begin()
            table.update(t, rid, (1, f"v{i + 1}"))
            t.commit()
        vacuum_delta(table, mgr)
        assert table.visible_version(reader, rid)[1].data == (1, "v0")


class TestEngineIntegration:
    def _db(self, kind="btree"):
        db = Database(EngineConfig(buffer_pool_pages=128))
        db.create_table("r", [("a", "int"), ("b", "str")], storage="delta")
        db.create_index("ix", "r", ["a"], kind=kind)
        return db

    def test_figure10_lifecycle_on_delta_storage(self):
        for kind in ("btree", "pbt", "mvpbt"):
            db = self._db(kind)
            t = db.begin()
            db.insert(t, "r", (7, "V0"))
            t.commit()
            txr = db.begin()
            t1 = db.begin()
            assert db.update_by_key(t1, "ix", (7,), {"b": "V1"}) == 1
            t1.commit()
            t2 = db.begin()
            assert db.update_by_key(t2, "ix", (7,), {"a": 1}) == 1
            t2.commit()
            t3 = db.begin()
            assert db.delete_by_key(t3, "ix", (1,)) == 1
            t3.commit()
            assert db.select(txr, "ix", (7,)) == [(7, "V0")], kind
            assert db.count_range(txr, "ix", None, (10,)) == 1, kind
            fresh = db.begin()
            assert db.count_range(fresh, "ix", None, (10,)) == 0, kind

    def test_nonkey_updates_need_no_index_maintenance(self):
        db = self._db("btree")
        t = db.begin()
        db.insert(t, "r", (1, "x"))
        t.commit()
        ix = db.catalog.index("ix").oblivious
        entries_before = ix.entry_count()
        for i in range(10):
            t = db.begin()
            db.update_by_key(t, "ix", (1,), {"b": f"v{i}"})
            t.commit()
        assert ix.entry_count() == entries_before    # rid stable: no entries

    def test_vacuum_via_engine(self):
        db = self._db()
        t = db.begin()
        db.insert(t, "r", (1, "x"))
        t.commit()
        for i in range(5):
            t = db.begin()
            db.update_by_key(t, "ix", (1,), {"b": f"v{i}"})
            t.commit()
        result = db.vacuum("r")
        assert result.versions_removed >= 1


class TestUndoOnAbort:
    def test_aborted_update_rolled_back_lazily(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "good"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "aborted-garbage"))
        t2.abort()
        # the next writer restores the committed state and proceeds
        t3 = mgr.begin()
        table.update(t3, rid, (1, "after-abort"))
        t3.commit()
        fresh = mgr.begin()
        assert table.visible_version(fresh, rid)[1].data == (1, "after-abort")

    def test_aborted_delete_rolled_back(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "keep"))
        t.commit()
        t2 = mgr.begin()
        table.delete(t2, rid)
        t2.abort()
        t3 = mgr.begin()
        table.update(t3, rid, (1, "still-here"))   # must not raise
        t3.commit()
        fresh = mgr.begin()
        assert table.visible_version(fresh, rid)[1].data == (1, "still-here")

    def test_chained_aborts_unwind_fully(self, env):
        mgr, table = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "base"))
        t.commit()
        for i in range(3):
            t = mgr.begin()
            table.update(t, rid, (1, f"doomed-{i}"))
            t.abort()
        reader = mgr.begin()
        assert table.visible_version(reader, rid)[1].data == (1, "base")
        t = mgr.begin()
        table.update(t, rid, (1, "winner"))
        t.commit()
        fresh = mgr.begin()
        assert table.visible_version(fresh, rid)[1].data == (1, "winner")
