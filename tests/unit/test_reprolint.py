"""Tests for the reprolint static-analysis engine (tools/reprolint).

Each rule gets a bad fixture (must fire) and a good fixture (must stay
silent); the suite also pins the suppression pragma semantics, the JSON
output shape, the CLI exit codes — and that the real ``src/repro`` tree is
clean under ``--strict``, which is the gate CI enforces.
"""

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import (ALL_RULES, Finding, Linter,  # noqa: E402
                             Project, rule_by_id)
from tools.reprolint.cli import main  # noqa: E402
from tools.reprolint.engine import parse_suppressions  # noqa: E402

SRC_REPRO = REPO_ROOT / "src" / "repro"


def lint(source, rule_ids=("R1", "R2", "R3", "R4", "R5", "R6", "R7"), *,
         path="pkg/module.py", strict=False):
    """Lint one dedented snippet with a subset of rules."""
    rules = [rule_by_id(rid)() for rid in rule_ids]
    linter = Linter(rules, Project(), strict=strict)
    return linter.lint_source(textwrap.dedent(source), path)


def fired(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


# ----------------------------------------------------------- R1 determinism

class TestR1Determinism:
    def test_wall_clock_read_fires(self):
        findings = lint("""
            import time

            def stamp() -> float:
                return time.time()
            """, ["R1"])
        assert len(fired(findings, "R1")) == 1
        assert "time.time" in findings[0].message

    def test_aliased_import_is_resolved(self):
        findings = lint("""
            from time import time as now

            def stamp() -> float:
                return now()
            """, ["R1"])
        assert len(fired(findings, "R1")) == 1

    def test_module_level_random_fires(self):
        findings = lint("""
            import random

            def pick() -> float:
                return random.random()
            """, ["R1"])
        assert len(fired(findings, "R1")) == 1
        assert "unseeded" in findings[0].message

    def test_system_random_fires(self):
        findings = lint("""
            import random

            def gen() -> int:
                return random.SystemRandom().randrange(10)
            """, ["R1"])
        assert len(fired(findings, "R1")) == 1

    def test_os_urandom_and_uuid4_fire(self):
        findings = lint("""
            import os
            import uuid

            def token() -> bytes:
                return os.urandom(8) + uuid.uuid4().bytes
            """, ["R1"])
        assert len(fired(findings, "R1")) == 2

    def test_seeded_random_instance_is_clean(self):
        findings = lint("""
            import random

            def make_rng(seed: int) -> random.Random:
                return random.Random(seed)
            """, ["R1"])
        assert findings == []

    def test_findings_carry_location_and_hint(self):
        findings = lint("import time\nx = time.time()\n", ["R1"])
        assert findings[0].line == 2
        assert "SimClock" in findings[0].hint


# -------------------------------------------------------- R2 exhaustiveness

class TestR2RecordExhaustive:
    def test_partial_chain_without_else_fires(self):
        findings = lint("""
            def dispatch(r):
                if r.rtype is RecordType.REGULAR:
                    return 1
                elif r.rtype is RecordType.TOMBSTONE:
                    return 2
            """, ["R2"])
        assert len(fired(findings, "R2")) == 1
        missing = findings[0].message
        assert "ANTI" in missing and "REPLACEMENT" in missing
        assert "REGULAR_SET" in missing

    def test_partial_chain_with_silent_else_fires(self):
        findings = lint("""
            def dispatch(r):
                if r.rtype is RecordType.REGULAR:
                    return 1
                elif r.rtype is RecordType.ANTI:
                    return 2
                else:
                    return 0
            """, ["R2"])
        assert len(fired(findings, "R2")) == 1

    def test_partial_chain_with_raising_else_is_clean(self):
        findings = lint("""
            def dispatch(r):
                if r.rtype is RecordType.REGULAR:
                    return 1
                elif r.rtype is RecordType.ANTI:
                    return 2
                else:
                    raise StorageError(f"unhandled {r.rtype}")
            """, ["R2"])
        assert findings == []

    def test_full_coverage_is_clean(self):
        findings = lint("""
            def dispatch(r):
                if r.rtype is RecordType.REGULAR:
                    return 1
                elif r.rtype is RecordType.REPLACEMENT:
                    return 2
                elif r.rtype is RecordType.ANTI:
                    return 3
                elif r.rtype is RecordType.TOMBSTONE:
                    return 4
                elif r.rtype is RecordType.REGULAR_SET:
                    return 5
            """, ["R2"])
        assert findings == []

    def test_single_branch_filter_is_not_a_dispatch(self):
        findings = lint("""
            def only_matter(r):
                if r.rtype is RecordType.REGULAR_SET:
                    return r.set_entries
                return []
            """, ["R2"])
        assert findings == []

    def test_match_without_wildcard_fires(self):
        findings = lint("""
            def dispatch(r):
                match r.rtype:
                    case RecordType.REGULAR:
                        return 1
                    case RecordType.ANTI:
                        return 2
            """, ["R2"])
        assert len(fired(findings, "R2")) == 1

    def test_match_with_raising_wildcard_is_clean(self):
        findings = lint("""
            def dispatch(r):
                match r.rtype:
                    case RecordType.REGULAR:
                        return 1
                    case RecordType.ANTI:
                        return 2
                    case _:
                        raise StorageError("unhandled record type")
            """, ["R2"])
        assert findings == []


# --------------------------------------------------------- R3 immutability

class TestR3Immutability:
    def test_attribute_store_on_constructed_run_fires(self):
        findings = lint("""
            def rewrite(file, pool, records):
                run = PersistedRun(file, pool, records)
                run.page_nos = []
                return run
            """, ["R3"])
        assert len(fired(findings, "R3")) == 1

    def test_mutating_call_through_run_attribute_fires(self):
        findings = lint("""
            def patch(part, n):
                part.run.page_nos.append(n)
            """, ["R3"])
        assert len(fired(findings, "R3")) == 1

    def test_restore_binding_is_tracked(self):
        findings = lint("""
            def reattach(file, pool, meta):
                run = PersistedRun.restore(file, pool, page_nos=meta.pages)
                run.record_count = 0
                return run
            """, ["R3"])
        assert len(fired(findings, "R3")) == 1

    def test_lifecycle_method_is_clean(self):
        findings = lint("""
            def retire(file, pool, records):
                run = PersistedRun(file, pool, records)
                run.free()
            """, ["R3"])
        assert findings == []

    def test_defining_module_is_exempt(self):
        source = """
            def rebuild(file, pool, records):
                run = PersistedRun(file, pool, records)
                run.page_nos = []
            """
        assert lint(source, ["R3"], path="src/repro/index/runs.py") == []
        assert len(lint(source, ["R3"], path="src/repro/core/tree.py")) == 1

    def test_decoded_batch_mutation_fires(self):
        findings = lint("""
            def tamper(blob):
                batch = decode_leaf_batch(blob)
                batch.ts[0] = 0
                batch.rtypes = b""
            """, ["R3"])
        assert len(fired(findings, "R3")) == 2

    def test_loaded_page_mutation_fires(self):
        findings = lint("""
            def tamper(run, idx):
                page = run.load_page(idx)
                page.records.append(None)
            """, ["R3"])
        assert len(fired(findings, "R3")) == 1

    def test_batch_read_access_is_clean(self):
        findings = lint("""
            def read(blob):
                batch = decode_leaf_batch(blob)
                return batch.keys(), batch.payload_view(0)
            """, ["R3"])
        assert findings == []

    def test_serialization_module_is_exempt(self):
        source = """
            def build(records):
                batch = decode_leaf_batch(encode_leaf_batch(records))
                batch.count = 0
            """
        assert lint(source, ["R3"],
                    path="src/repro/core/serialization.py") == []
        assert len(lint(source, ["R3"],
                        path="src/repro/core/tree.py")) == 1


# -------------------------------------------------------- R4 storage bypass

class TestR4StorageBypass:
    def test_builtin_open_fires(self):
        findings = lint("""
            def dump(path):
                with open(path, "w") as fh:
                    fh.write("x")
            """, ["R4"])
        assert len(fired(findings, "R4")) == 1
        assert "DeviceStats" in findings[0].message

    def test_os_read_and_mmap_fire(self):
        findings = lint("""
            import mmap
            import os

            def peek(fd):
                os.read(fd, 16)
                return mmap.mmap(fd, 4096)
            """, ["R4"])
        assert len(fired(findings, "R4")) == 2

    def test_locally_defined_open_is_not_builtin(self):
        findings = lint("""
            def open(page_no):
                return page_no

            def use():
                return open(3)
            """, ["R4"])
        assert findings == []

    def test_suppression_with_justification(self):
        findings = lint("""
            def dump_report(path, text):
                with open(path, "w") as fh:  # reprolint: disable=R4 -- host-side report emitter, not engine I/O
                    fh.write(text)
            """, ["R4"], strict=True)
        assert findings == []


# ------------------------------------------------------ R5 error discipline

class TestR5ErrorDiscipline:
    def test_raise_outside_hierarchy_fires(self):
        findings = lint("""
            def check(n):
                if n < 0:
                    raise ValueError("negative")
            """, ["R5"])
        assert len(fired(findings, "R5")) == 1
        assert "ReproError" in findings[0].message

    def test_repro_error_subclass_is_clean(self):
        findings = lint("""
            def check(n):
                if n < 0:
                    raise StorageError("negative")
            """, ["R5"])
        assert findings == []

    def test_reraise_is_clean(self):
        findings = lint("""
            def forward():
                try:
                    work()
                except StorageError as exc:
                    log(exc)
                    raise
            """, ["R5"])
        assert findings == []

    def test_bare_except_fires_anywhere(self):
        findings = lint("""
            def swallow():
                try:
                    work()
                except:
                    pass
            """, ["R5"])
        assert len(fired(findings, "R5")) == 1

    def test_swallowed_broad_except_in_durability_fires(self):
        source = """
            def recover_step():
                try:
                    replay()
                except Exception:
                    return None
            """
        bad = lint(source, ["R5"], path="src/repro/durability/recovery.py")
        assert len(fired(bad, "R5")) == 1
        # the same shape outside a durability path is tolerated
        assert lint(source, ["R5"], path="src/repro/engine/database.py") == []

    def test_broad_except_that_reraises_is_clean(self):
        findings = lint("""
            def recover_step():
                try:
                    replay()
                except Exception as exc:
                    cleanup()
                    raise RecoveryError("replay failed") from exc
            """, ["R5"], path="src/repro/durability/recovery.py")
        assert findings == []


# ----------------------------------------------------------------- R6 typing

class TestR6Typing:
    def test_unannotated_def_fires_per_gap(self):
        findings = lint("""
            def put(key, value):
                return key
            """, ["R6"])
        messages = " / ".join(f.message for f in findings)
        assert len(fired(findings, "R6")) == 3   # key, value, return
        assert "'key'" in messages and "return" in messages

    def test_bare_generic_annotation_fires(self):
        findings = lint("""
            def keys_of(batch: list) -> tuple:
                return tuple(batch)
            """, ["R6"])
        assert len(fired(findings, "R6")) == 2
        assert "bare generic" in findings[0].message

    def test_nested_def_is_checked(self):
        findings = lint("""
            def outer() -> None:
                def inner(x):
                    return x
            """, ["R6"])
        assert len(fired(findings, "R6")) == 2   # inner's param + return

    def test_self_and_cls_are_exempt(self):
        findings = lint("""
            class Store:
                def get(self, key: int) -> int:
                    return key

                @classmethod
                def build(cls) -> "Store":
                    return cls()
            """, ["R6"])
        assert findings == []

    def test_parameterised_generics_are_clean(self):
        findings = lint("""
            def group(rows: list[tuple[int, str]]) -> dict[int, str]:
                return dict(rows)
            """, ["R6"])
        assert findings == []


# -------------------------------------------------- R7 time discipline

class TestR7TimeDiscipline:
    def test_time_import_fires_even_unused(self):
        findings = lint("""
            import time

            def noop() -> None:
                return None
            """, ["R7"])
        assert len(fired(findings, "R7")) == 1
        assert "SimClock" in findings[0].message

    def test_datetime_from_import_fires(self):
        findings = lint("""
            from datetime import datetime

            def label() -> str:
                return "x"
            """, ["R7"])
        assert len(fired(findings, "R7")) == 1
        assert "datetime" in findings[0].message

    def test_dotted_submodule_import_fires(self):
        findings = lint("import datetime.timezone\n", ["R7"])
        assert len(fired(findings, "R7")) == 1

    def test_dunder_import_dodge_fires(self):
        findings = lint('x = __import__("time").time()\n', ["R7"])
        assert len(fired(findings, "R7")) == 1
        assert "dynamic import" in findings[0].message

    def test_dunder_import_of_allowed_module_is_clean(self):
        findings = lint('mod = __import__("json")\n', ["R7"])
        assert findings == []

    def test_private_tracer_construction_fires(self):
        findings = lint("""
            from repro.obs.tracing import Tracer

            def make(clock):
                return Tracer(clock)
            """, ["R7"], path="src/repro/core/tree.py")
        assert len(fired(findings, "R7")) == 1
        assert "Observability facade" in findings[0].message

    def test_relative_import_construction_fires(self):
        # FileContext.imports cannot resolve relative imports, so the
        # rule must catch the bare class name too
        findings = lint("""
            from ..obs.registry import MetricsRegistry

            def make():
                return MetricsRegistry()
            """, ["R7"], path="src/repro/core/tree.py")
        assert len(fired(findings, "R7")) == 1

    def test_obs_package_may_construct_instruments(self):
        findings = lint("""
            from .tracing import Tracer

            def make(clock):
                return Tracer(clock)
            """, ["R7"], path="src/repro/obs/core.py")
        assert findings == []

    def test_unrelated_class_sharing_name_is_clean(self):
        findings = lint("""
            from wiretap.trace import Tracer

            def make():
                return Tracer()
            """, ["R7"], path="src/repro/core/tree.py")
        assert findings == []

    def test_using_the_facade_is_clean(self):
        findings = lint("""
            def record(obs) -> None:
                obs.registry.counter("mvpbt.evict.count").inc()
                obs.tracer.emit("mvpbt.gc.purge_leaf", removed=3)
            """, ["R7"])
        assert findings == []


class TestR8ConcurrencyConfinement:
    def test_threading_import_fires_even_unused(self):
        findings = lint("""
            import threading

            def noop() -> None:
                return None
            """, ["R8"], path="src/repro/core/tree.py")
        assert len(fired(findings, "R8")) == 1
        assert "single-caller" in findings[0].message

    def test_from_import_of_lock_fires(self):
        findings = lint("""
            from threading import Lock

            guard = Lock()
            """, ["R8"], path="src/repro/buffer/pool.py")
        assert len(fired(findings, "R8")) == 1

    def test_queue_and_concurrent_futures_fire(self):
        findings = lint("""
            import queue
            import concurrent.futures
            """, ["R8"], path="src/repro/engine/database.py")
        assert len(fired(findings, "R8")) == 2

    def test_dunder_import_dodge_fires(self):
        findings = lint('mod = __import__("threading")\n', ["R8"],
                        path="src/repro/core/partition.py")
        assert len(fired(findings, "R8")) == 1
        assert "dynamic import" in findings[0].message

    def test_dunder_import_of_allowed_module_is_clean(self):
        findings = lint('mod = __import__("json")\n', ["R8"],
                        path="src/repro/core/partition.py")
        assert findings == []

    def test_serve_package_is_allowlisted(self):
        findings = lint("""
            import threading
            from queue import Queue
            """, ["R8"], path="src/repro/serve/scheduler.py")
        assert findings == []

    def test_synchronized_txn_components_are_allowlisted(self):
        for path in ("src/repro/txn/manager.py", "src/repro/txn/status.py"):
            findings = lint("import threading\n", ["R8"], path=path)
            assert findings == [], path

    def test_other_txn_modules_are_not_allowlisted(self):
        findings = lint("import threading\n", ["R8"],
                        path="src/repro/txn/transaction.py")
        assert len(fired(findings, "R8")) == 1

    def test_relative_import_is_ignored(self):
        # `from . import something` has no absolute module root to ban
        findings = lint("from . import helpers\n", ["R8"],
                        path="src/repro/core/tree.py")
        assert findings == []


# ------------------------------------------------------ engine & suppressions

class TestSuppressions:
    def test_same_line_pragma_suppresses(self):
        findings = lint("""
            import time
            x = time.time()  # reprolint: disable=R1 -- fixture
            """, ["R1"])
        assert findings == []

    def test_disable_next_suppresses_following_line(self):
        findings = lint("""
            import time
            # reprolint: disable-next=R1 -- fixture
            x = time.time()
            """, ["R1"])
        assert findings == []

    def test_slug_and_all_tokens_work(self):
        base = "import time\nx = time.time()  # reprolint: disable={} -- f\n"
        assert lint(base.format("determinism"), ["R1"]) == []
        assert lint(base.format("all"), ["R1"]) == []

    def test_wrong_rule_does_not_suppress(self):
        findings = lint("""
            import time
            x = time.time()  # reprolint: disable=R4 -- wrong rule
            """, ["R1", "R4"])
        assert len(fired(findings, "R1")) == 1

    def test_unknown_rule_token_is_s1(self):
        findings = lint("""
            x = 1  # reprolint: disable=R99 -- no such rule
            """, ["R1"])
        assert len(fired(findings, "S1")) == 1
        assert "unknown rule" in findings[0].message

    def test_missing_justification_is_s1_only_under_strict(self):
        source = """
            import time
            x = time.time()  # reprolint: disable=R1
            """
        assert lint(source, ["R1"]) == []
        strict = lint(source, ["R1"], strict=True)
        assert len(fired(strict, "S1")) == 1
        assert "justification" in strict[0].message

    def test_suppressed_count_is_tracked(self):
        linter = Linter([rule_by_id("R1")()], Project())
        linter.lint_source(
            "import time\nx = time.time()  # reprolint: disable=R1 -- f\n")
        assert linter.suppressed_count == 1

    def test_pragma_in_string_literal_is_ignored(self):
        sups = parse_suppressions(
            's = "# reprolint: disable=R1 -- not a pragma"\n')
        assert sups == []


class TestEngine:
    def test_syntax_error_becomes_e0_finding(self):
        findings = lint("def broken(:\n", ["R1"])
        assert findings[0].rule == "E0"

    def test_finding_to_dict_round_trips(self):
        finding = lint("import time\nx = time.time()\n", ["R1"])[0]
        data = finding.to_dict()
        assert data["rule"] == "R1" and data["line"] == 2
        assert Finding(**data) == finding

    def test_project_load_parses_error_hierarchy(self):
        project = Project.load(REPO_ROOT / "src")
        assert "WorkloadError" in project.repro_errors
        assert "ReproError" in project.repro_errors
        assert "ValueError" not in project.repro_errors

    def test_project_load_parses_record_types(self):
        project = Project.load(REPO_ROOT / "src")
        assert project.record_types == ("REGULAR", "REPLACEMENT", "ANTI",
                                        "TOMBSTONE", "REGULAR_SET")

    def test_all_rules_have_unique_ids(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids)) == 11


# ----------------------------------------------------------------- CLI gate

class TestCLI:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def add(a: int, b: int) -> int:\n"
                          "    return a + b\n")
        assert main([str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_bad_file_exits_one_per_rule(self, tmp_path, capsys):
        bad = {
            "R1": "import time\nx = time.time()\n",
            "R2": ("def d(r):\n"
                   "    if r.rtype is RecordType.REGULAR:\n"
                   "        return 1\n"
                   "    elif r.rtype is RecordType.ANTI:\n"
                   "        return 2\n"),
            "R3": ("def f(run):\n"
                   "    run = PersistedRun(1, 2, 3)\n"
                   "    run.page_nos = []\n"),
            "R4": "fh = open('x')\n",
            "R5": "raise ValueError('x')\n",
            "R6": "def f(x):\n    return x\n",
            "R7": "from repro.obs.tracing import Tracer\n"
                  "t = Tracer(None)\n",
        }
        for rule_id, source in bad.items():
            target = tmp_path / f"bad_{rule_id.lower()}.py"
            target.write_text(source)
            code = main([str(target), "--strict", "--select", rule_id])
            out = capsys.readouterr().out
            assert code == 1, f"{rule_id} fixture did not gate"
            assert rule_id in out

    def test_json_output_shape(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import time\nx = time.time()\n")
        assert main([str(target), "--format", "json",
                     "--select", "R1"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        record = payload["findings"][0]
        assert record["rule"] == "R1"
        assert record["line"] == 2
        assert set(record) == {"rule", "name", "path", "line", "col",
                               "message", "hint"}

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_select_and_ignore_filter_rules(self, tmp_path, capsys):
        target = tmp_path / "mixed.py"
        target.write_text("import time\nx = time.time()\n"
                          "def f(y):\n    return y\n")
        assert main([str(target), "--select", "R6", "--ignore", "R6"]) == 2
        capsys.readouterr()
        assert main([str(target), "--select", "R1,R6"]) == 1
        out = capsys.readouterr().out
        assert "R1" in out and "R6" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
            assert rule_id in out


# ------------------------------------------------------------- the real tree

class TestRealTree:
    def test_src_repro_is_clean_under_strict(self, capsys):
        """The CI gate: the shipped engine tree has zero findings."""
        code = main([str(SRC_REPRO), "--strict"])
        out = capsys.readouterr().out
        assert code == 0, f"reprolint regressions:\n{out}"

    def test_tools_tree_is_clean_for_invariant_rules(self, capsys):
        """reprolint lints itself for everything but the typing proxy
        (R6 asks for repro.types aliases that tools/ deliberately avoids
        importing, staying dependency-free)."""
        code = main([str(REPO_ROOT / "tools"), "--strict",
                     "--ignore", "R6"])
        out = capsys.readouterr().out
        assert code == 0, f"reprolint self-lint regressions:\n{out}"
