"""Unit tests for the CH-benchmark driver."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import WorkloadError
from repro.workloads.chbench import CHBenchmark
from repro.workloads.tpcc import TPCCConfig


def make_ch(index_kind="mvpbt", **opts):
    db = Database(EngineConfig(buffer_pool_pages=256))
    cfg = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                     customers_per_district=10, items=20,
                     initial_orders_per_district=10)
    ch = CHBenchmark(db, cfg, index_kind=index_kind, index_options=opts)
    ch.load()
    return db, ch


class TestQueries:
    def test_q1_groups_by_line_number(self):
        db, ch = make_ch()
        t = db.begin()
        rows = ch.query_q1(t)
        t.commit()
        assert rows
        numbers = [r[0] for r in rows]
        assert numbers == sorted(numbers)
        assert all(count >= 1 for _n, _q, _a, count in rows)

    def test_q1_totals_match_order_line_count(self):
        db, ch = make_ch()
        t = db.begin()
        rows = ch.query_q1(t)
        total = sum(int(r[3]) for r in rows)
        assert total == len(db.seq_scan(t, "order_line"))
        t.commit()

    def test_q6_revenue_filter(self):
        db, ch = make_ch()
        t = db.begin()
        revenue = ch.query_q6(t)
        all_lines = db.seq_scan(t, "order_line")
        expected = sum(line[7] for line in all_lines if 1 <= line[6] <= 7)
        assert revenue == pytest.approx(expected)
        t.commit()

    def test_low_stock_counts(self):
        db, ch = make_ch()
        t = db.begin()
        low = ch.query_low_stock(t, threshold=101)
        assert low == len(db.seq_scan(t, "stock"))   # everything below 101
        t.commit()

    def test_run_query_dispatch(self):
        db, ch = make_ch()
        t = db.begin()
        for name in ch.QUERIES:
            assert ch.run_query(t, name) >= 0
        with pytest.raises(WorkloadError):
            ch.run_query(t, "q99")
        t.commit()


class TestMixedRun:
    def test_mixed_run_produces_both_kinds(self):
        _db, ch = make_ch()
        result = ch.run_mixed(rounds=2, oltp_slice=20)
        assert result.oltp_committed > 0
        assert result.olap_queries == 2 * len(ch.QUERIES)
        assert result.oltp_tpm > 0
        assert result.olap_qpm > 0

    def test_queries_see_pre_slice_snapshot(self):
        """The analytical snapshot opens before the OLTP slice: its Q1 totals
        must match the data as of the snapshot, not the post-slice state."""
        db, ch = make_ch()
        t0 = db.begin()
        baseline = sum(int(r[3]) for r in ch.query_q1(t0))
        t0.commit()
        olap = db.begin()
        ch.tpcc.run(30)   # creates new orders/lines
        stale_total = sum(int(r[3]) for r in ch.query_q1(olap))
        olap.commit()
        fresh = db.begin()
        fresh_total = sum(int(r[3]) for r in ch.query_q1(fresh))
        fresh.commit()
        assert stale_total == baseline
        assert fresh_total >= baseline

    def test_paused_query_scan_time_grows_with_pause(self):
        _db, ch = make_ch(index_kind="pbt")
        short, _rows = ch.run_paused_query(pause_slices=1, oltp_per_slice=10)
        _db2, ch2 = make_ch(index_kind="pbt")
        long, _rows2 = ch2.run_paused_query(pause_slices=6, oltp_per_slice=10)
        assert long > short


class TestExtendedQueries:
    def test_q4_counts_fully_delivered_orders(self):
        db, ch = make_ch()
        t = db.begin()
        count = ch.query_q4(t)
        # loaded orders with carriers have delivery stamps on all lines
        orders = db.seq_scan(t, "orders")
        delivered = [o for o in orders if o[4] != 0]
        assert count == len(delivered)
        t.commit()

    def test_top_customers_sorted_by_balance(self):
        db, ch = make_ch()
        t = db.begin()
        top = ch.query_top_customers(t, n=5)
        balances = [r[3] for r in top]
        assert balances == sorted(balances, reverse=True)
        assert len(top) == 5
        t.commit()

    def test_district_revenue_covers_all_districts(self):
        db, ch = make_ch()
        t = db.begin()
        revenue = ch.query_revenue_by_district(t)
        cfg = ch.tpcc.config
        assert len(revenue) == cfg.warehouses * cfg.districts_per_warehouse
        total = sum(revenue.values())
        lines = db.seq_scan(t, "order_line")
        assert total == pytest.approx(sum(line[7] for line in lines))
        t.commit()

    def test_all_registered_queries_run(self):
        db, ch = make_ch()
        t = db.begin()
        for name in ch.QUERIES:
            assert ch.run_query(t, name) >= 0, name
        t.commit()
