"""Unit tests for tuple-level garbage collection (vacuum)."""

import pytest

from repro.buffer.pool import BufferPool
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.table.heap import HeapTable
from repro.table.sias import SIASTable
from repro.table.vacuum import vacuum_heap, vacuum_sias
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    return TransactionManager(clock), device, BufferPool(128)


class TestVacuumHeap:
    def test_superseded_versions_removed(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        for i in range(5):
            t = mgr.begin()
            resolved = table.visible_version(t, rid)
            table.update(t, resolved[0], (1, f"v{i}"))
            t.commit()
        result = vacuum_heap(table, mgr)
        assert result.versions_removed == 5
        reader = mgr.begin()
        resolved = table.visible_version(reader, rid)
        assert resolved is not None and resolved[1].data == (1, "v4")

    def test_versions_visible_to_active_snapshot_kept(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        old_reader = mgr.begin()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        result = vacuum_heap(table, mgr)
        assert result.versions_removed == 0
        assert table.visible_version(old_reader, rid)[1].data == (1, "a")

    def test_aborted_versions_removed(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.abort()
        result = vacuum_heap(table, mgr)
        assert result.versions_removed == 1

    def test_chain_root_becomes_stub_and_walk_still_works(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        vacuum_heap(table, mgr)
        reader = mgr.begin()
        # index entries still point at the root rid; the stub must forward
        resolved = table.visible_version(reader, rid)
        assert resolved is not None and resolved[1].data == (1, "b")


class TestVacuumSias:
    def test_dead_chain_dropped_and_page_freed(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool,
                          flush_extent_pages=1)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "x" * 3000))
        t.commit()
        t2 = mgr.begin()
        table.delete(t2, rid)
        t2.commit()
        # push versions out of the tail so pages become freeable
        t3 = mgr.begin()
        for i in range(30):
            table.insert(t3, (100 + i, "y" * 500))
        t3.commit()
        table.flush_tail()
        result = vacuum_sias(table, mgr)
        assert vid in result.dropped_vids
        assert not table.has_chain(vid)

    def test_old_snapshot_blocks_reclamation(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        t.commit()
        reader = mgr.begin()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        result = vacuum_sias(table, mgr)
        assert result.versions_removed == 0
        entry = table.entry_point(vid)
        assert table.visible_version(reader, entry)[1].data == (1, "a")

    def test_superseded_below_cutoff_detached(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "v0"))
        t.commit()
        last = rid
        for i in range(4):
            t = mgr.begin()
            last = table.update(t, last, (1, f"v{i + 1}"))
            t.commit()
        result = vacuum_sias(table, mgr)
        assert result.versions_removed == 4
        # chain anchor no longer links to removed predecessors
        anchor = table.fetch(table.entry_point(vid))
        assert anchor.prev_rid is None

    def test_aborted_versions_collected(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "bad"))
        t2.abort()
        result = vacuum_sias(table, mgr)
        assert result.versions_removed >= 1


class TestVacuumDelta:
    def make_table(self, device, pool):
        from repro.table.delta import DeltaTable
        return DeltaTable("t", PageFile("t:main", device, 8192, 8),
                          PageFile("t:pool", device, 8192, 8), pool)

    def test_chain_trimmed_below_cutoff(self, env):
        from repro.table.vacuum import vacuum_delta
        mgr, device, pool = env
        table = self.make_table(device, pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        for i in range(5):
            t = mgr.begin()
            table.update(t, rid, (1, f"v{i}"))
            t.commit()
        result = vacuum_delta(table, mgr)
        assert result.versions_removed >= 1
        reader = mgr.begin()
        assert table.visible_version(reader, rid)[1].data == (1, "v4")
        # a second pass finds nothing more to trim
        assert vacuum_delta(table, mgr).versions_removed == 0

    def test_old_snapshot_blocks_trim(self, env):
        from repro.table.vacuum import vacuum_delta
        mgr, device, pool = env
        table = self.make_table(device, pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        old_reader = mgr.begin()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        vacuum_delta(table, mgr)
        # the old snapshot still reconstructs its version from the delta
        assert table.visible_version(old_reader, rid)[1].data == (1, "a")
        fresh = mgr.begin()
        assert table.visible_version(fresh, rid)[1].data == (1, "b")

    def test_unreachable_pool_pages_freed(self, env):
        from repro.table.vacuum import vacuum_delta
        mgr, device, pool = env
        table = self.make_table(device, pool)
        rids = []
        t = mgr.begin()
        for i in range(16):
            _, rid = table.insert(t, (i, "x" * 400))
            rids.append(rid)
        t.commit()
        for round_ in range(10):
            t = mgr.begin()
            for rid in rids:
                table.update(t, rid, (round_, "y" * 400))
            t.commit()
        result = vacuum_delta(table, mgr)
        assert result.pages_freed > 0
        reader = mgr.begin()
        for rid in rids:
            assert table.visible_version(reader, rid)[1].data == (9, "y" * 400)


class TestVacuumStatsPaths:
    """The stats-bearing corners the observability work leans on."""

    def test_heap_removed_rids_reported_for_non_roots(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        t = mgr.begin()
        mid = table.update(t, rid, (1, "b"))
        t.commit()
        t = mgr.begin()
        table.update(t, mid, (1, "c"))
        t.commit()
        result = vacuum_heap(table, mgr)
        # the root is pruned in place (not removed); the middle version is
        # physically removed and reported for index-level GC
        assert result.versions_removed == 2
        assert result.removed_rids == [mid]

    def test_sias_dropped_vids_reported(self, env):
        mgr, device, pool = env
        table = SIASTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        t.commit()
        t = mgr.begin()
        table.delete(t, table.entry_point(vid))
        t.commit()
        mgr.run(lambda txn: None)  # advance the cutoff past the delete
        result = vacuum_sias(table, mgr)
        assert result.dropped_vids == [vid]
        assert rid in result.removed_rids
        assert not table.has_chain(vid)

    def test_vacuum_result_counts_consistent(self, env):
        mgr, device, pool = env
        table = SIASTable("t", PageFile("t", device, 8192, 8), pool)
        rids = {}
        t = mgr.begin()
        for i in range(10):
            vid, _ = table.insert(t, (i, "a"))
            rids[i] = vid
        t.commit()
        for i in range(0, 10, 2):
            t = mgr.begin()
            table.update(t, table.entry_point(rids[i]), (i, "b"))
            t.commit()
        result = vacuum_sias(table, mgr)
        assert result.versions_removed == len(result.removed_rids)
        assert result.versions_removed == 5
