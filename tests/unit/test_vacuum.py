"""Unit tests for tuple-level garbage collection (vacuum)."""

import pytest

from repro.buffer.pool import BufferPool
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.table.heap import HeapTable
from repro.table.sias import SIASTable
from repro.table.vacuum import vacuum_heap, vacuum_sias
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    return TransactionManager(clock), device, BufferPool(128)


class TestVacuumHeap:
    def test_superseded_versions_removed(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        for i in range(5):
            t = mgr.begin()
            resolved = table.visible_version(t, rid)
            table.update(t, resolved[0], (1, f"v{i}"))
            t.commit()
        result = vacuum_heap(table, mgr)
        assert result.versions_removed == 5
        reader = mgr.begin()
        resolved = table.visible_version(reader, rid)
        assert resolved is not None and resolved[1].data == (1, "v4")

    def test_versions_visible_to_active_snapshot_kept(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        old_reader = mgr.begin()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        result = vacuum_heap(table, mgr)
        assert result.versions_removed == 0
        assert table.visible_version(old_reader, rid)[1].data == (1, "a")

    def test_aborted_versions_removed(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.abort()
        result = vacuum_heap(table, mgr)
        assert result.versions_removed == 1

    def test_chain_root_becomes_stub_and_walk_still_works(self, env):
        mgr, device, pool = env
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        vacuum_heap(table, mgr)
        reader = mgr.begin()
        # index entries still point at the root rid; the stub must forward
        resolved = table.visible_version(reader, rid)
        assert resolved is not None and resolved[1].data == (1, "b")


class TestVacuumSias:
    def test_dead_chain_dropped_and_page_freed(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool,
                          flush_extent_pages=1)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "x" * 3000))
        t.commit()
        t2 = mgr.begin()
        table.delete(t2, rid)
        t2.commit()
        # push versions out of the tail so pages become freeable
        t3 = mgr.begin()
        for i in range(30):
            table.insert(t3, (100 + i, "y" * 500))
        t3.commit()
        table.flush_tail()
        result = vacuum_sias(table, mgr)
        assert vid in result.dropped_vids
        assert not table.has_chain(vid)

    def test_old_snapshot_blocks_reclamation(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        t.commit()
        reader = mgr.begin()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        result = vacuum_sias(table, mgr)
        assert result.versions_removed == 0
        entry = table.entry_point(vid)
        assert table.visible_version(reader, entry)[1].data == (1, "a")

    def test_superseded_below_cutoff_detached(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "v0"))
        t.commit()
        last = rid
        for i in range(4):
            t = mgr.begin()
            last = table.update(t, last, (1, f"v{i + 1}"))
            t.commit()
        result = vacuum_sias(table, mgr)
        assert result.versions_removed == 4
        # chain anchor no longer links to removed predecessors
        anchor = table.fetch(table.entry_point(vid))
        assert anchor.prev_rid is None

    def test_aborted_versions_collected(self, env):
        mgr, device, pool = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "bad"))
        t2.abort()
        result = vacuum_sias(table, mgr)
        assert result.versions_removed >= 1
