"""Unit tests for the MVCC transaction manager, snapshots and commit log."""

import pytest

from repro.errors import TransactionStateError
from repro.sim.clock import SimClock
from repro.txn.manager import TransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.status import CommitLog, TxnStatus
from repro.txn.transaction import TxnState


@pytest.fixture
def mgr():
    return TransactionManager(SimClock())


class TestLifecycle:
    def test_ids_monotonic(self, mgr):
        t1, t2 = mgr.begin(), mgr.begin()
        assert t2.id == t1.id + 1

    def test_commit_updates_state_and_log(self, mgr):
        t = mgr.begin()
        t.commit()
        assert t.state is TxnState.COMMITTED
        assert mgr.commit_log.is_committed(t.id)

    def test_abort(self, mgr):
        t = mgr.begin()
        t.abort()
        assert t.state is TxnState.ABORTED
        assert mgr.commit_log.is_aborted(t.id)

    def test_double_commit_rejected(self, mgr):
        t = mgr.begin()
        t.commit()
        with pytest.raises(TransactionStateError):
            t.commit()

    def test_require_active_raises_after_commit(self, mgr):
        t = mgr.begin()
        t.commit()
        with pytest.raises(TransactionStateError):
            t.require_active()

    def test_context_manager_commits(self, mgr):
        with mgr.begin() as t:
            pass
        assert t.state is TxnState.COMMITTED

    def test_context_manager_aborts_on_error(self, mgr):
        with pytest.raises(ValueError):
            with mgr.begin() as t:
                raise ValueError("boom")
        assert t.state is TxnState.ABORTED

    def test_run_helper(self, mgr):
        result = mgr.run(lambda txn: txn.id)
        assert result == 1
        assert mgr.committed_count == 1

    def test_begin_charges_overhead(self, mgr):
        before = mgr.clock.now
        mgr.begin()
        assert mgr.clock.now > before


class TestSnapshots:
    def test_snapshot_sees_committed_earlier(self, mgr):
        t1 = mgr.begin()
        t1.commit()
        t2 = mgr.begin()
        assert t2.snapshot.sees_ts(t1.id, mgr.commit_log)

    def test_snapshot_never_sees_concurrent(self, mgr):
        t1 = mgr.begin()
        t2 = mgr.begin()
        t1.commit()     # commits AFTER t2's snapshot
        assert not t2.snapshot.sees_ts(t1.id, mgr.commit_log)
        assert t2.snapshot.is_concurrent(t1.id)

    def test_snapshot_never_sees_later(self, mgr):
        t1 = mgr.begin()
        t2 = mgr.begin()
        t2.commit()
        assert not t1.snapshot.sees_ts(t2.id, mgr.commit_log)

    def test_snapshot_never_sees_aborted(self, mgr):
        t1 = mgr.begin()
        t1.abort()
        t2 = mgr.begin()
        assert not t2.snapshot.sees_ts(t1.id, mgr.commit_log)

    def test_own_writes_visible(self, mgr):
        t = mgr.begin()
        assert t.snapshot.sees_ts(t.id, mgr.commit_log)
        assert not t.snapshot.is_concurrent(t.id)

    def test_xmin_tracks_oldest_active(self, mgr):
        t1 = mgr.begin()
        t2 = mgr.begin()
        assert t2.snapshot.xmin == t1.id
        t3 = mgr.begin()
        assert t3.snapshot.xmin == t1.id


class TestCutoff:
    def test_cutoff_without_active_is_next_txid(self, mgr):
        t = mgr.begin()
        t.commit()
        assert mgr.cutoff_txid() == mgr.next_txid

    def test_cutoff_pinned_by_long_running_txn(self, mgr):
        old = mgr.begin()
        for _ in range(5):
            mgr.begin().commit()
        assert mgr.cutoff_txid() == old.id
        old.commit()
        assert mgr.cutoff_txid() == mgr.next_txid

    def test_cutoff_follows_snapshot_xmin_not_own_id(self, mgr):
        t1 = mgr.begin()
        t2 = mgr.begin()   # xmin = t1.id
        t1.commit()
        # t2 still active, with a snapshot anchored at t1
        assert mgr.cutoff_txid() == t1.id
        t2.commit()


class TestCommitLog:
    def test_unknown_id_in_progress(self):
        log = CommitLog()
        assert log.status(99) is TxnStatus.IN_PROGRESS
        assert not log.is_committed(99)
        assert not log.is_aborted(99)

    def test_transitions(self):
        log = CommitLog()
        log.register(1)
        assert log.status(1) is TxnStatus.IN_PROGRESS
        log.set_committed(1)
        assert log.is_committed(1)
        log.register(2)
        log.set_aborted(2)
        assert log.is_aborted(2)


class TestSnapshotUnit:
    def test_direct_snapshot_semantics(self):
        log = CommitLog()
        log.register(5)
        log.set_committed(5)
        snap = Snapshot(owner=10, xmax=8, active=frozenset({6}), xmin=5)
        assert snap.sees_ts(5, log)
        assert not snap.sees_ts(6, log)   # was active
        assert not snap.sees_ts(8, log)   # >= xmax
        assert snap.sees_ts(10, log)      # own
