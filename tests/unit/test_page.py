"""Unit tests for slotted pages."""

import pytest

from repro.errors import PageOverflowError, SlotNotFoundError
from repro.storage.page import PAGE_HEADER_BYTES, SLOT_OVERHEAD_BYTES, SlottedPage


@pytest.fixture
def page():
    return SlottedPage(page_no=0, capacity=1024)


class TestInsert:
    def test_insert_returns_sequential_slots(self, page):
        assert page.insert("a", 10) == 0
        assert page.insert("b", 10) == 1

    def test_space_accounting(self, page):
        page.insert("a", 100)
        assert page.used_bytes == PAGE_HEADER_BYTES + 100 + SLOT_OVERHEAD_BYTES

    def test_overflow_rejected(self, page):
        with pytest.raises(PageOverflowError):
            page.insert("big", 2000)

    def test_fits_accounts_for_slot_overhead(self, page):
        exact = page.free_space - SLOT_OVERHEAD_BYTES
        assert page.fits(exact)
        assert not page.fits(exact + 1)

    def test_insert_marks_dirty(self, page):
        assert not page.dirty
        page.insert("a", 10)
        assert page.dirty


class TestReadUpdateDelete:
    def test_read_returns_payload(self, page):
        slot = page.insert({"k": 1}, 10)
        assert page.read(slot) == {"k": 1}

    def test_read_bad_slot(self, page):
        with pytest.raises(SlotNotFoundError):
            page.read(0)

    def test_update_in_place(self, page):
        slot = page.insert("old", 10)
        page.update(slot, "new", 12)
        assert page.read(slot) == "new"

    def test_update_space_delta(self, page):
        slot = page.insert("old", 10)
        used = page.used_bytes
        page.update(slot, "new", 25)
        assert page.used_bytes == used + 15

    def test_update_overflow_rejected(self, page):
        slot = page.insert("x", 10)
        with pytest.raises(PageOverflowError):
            page.update(slot, "huge", 5000)

    def test_delete_frees_space_keeps_slot_numbering(self, page):
        s0 = page.insert("a", 10)
        s1 = page.insert("b", 10)
        page.delete(s0)
        with pytest.raises(SlotNotFoundError):
            page.read(s0)
        assert page.read(s1) == "b"

    def test_delete_then_read_raises(self, page):
        slot = page.insert("a", 10)
        page.delete(slot)
        with pytest.raises(SlotNotFoundError):
            page.read(slot)


class TestCompactAndIteration:
    def test_items_skips_holes(self, page):
        page.insert("a", 10)
        s1 = page.insert("b", 10)
        page.insert("c", 10)
        page.delete(s1)
        assert [p for _s, p in page.items()] == ["a", "c"]

    def test_live_slots(self, page):
        page.insert("a", 10)
        s = page.insert("b", 10)
        page.delete(s)
        assert page.live_slots == 1
        assert page.slot_count == 2

    def test_compact_reclaims_trailing_overhead(self, page):
        page.insert("a", 10)
        s1 = page.insert("b", 10)
        s2 = page.insert("c", 10)
        page.delete(s2)
        page.delete(s1)
        reclaimed = page.compact()
        assert reclaimed == 2 * SLOT_OVERHEAD_BYTES
        assert page.slot_count == 1

    def test_compact_keeps_interior_holes(self, page):
        s0 = page.insert("a", 10)
        page.insert("b", 10)
        page.delete(s0)
        assert page.compact() == 0
        assert page.slot_count == 2
