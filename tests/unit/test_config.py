"""Unit tests for configuration validation."""

import pytest

from repro.config import CostModel, EngineConfig
from repro.errors import ConfigError


class TestEngineConfig:
    def test_defaults_valid(self):
        cfg = EngineConfig()
        assert cfg.page_size == 8192
        assert cfg.extent_bytes == 8192 * 8

    def test_page_size_too_small(self):
        with pytest.raises(ConfigError):
            EngineConfig(page_size=256)

    def test_extent_pages_positive(self):
        with pytest.raises(ConfigError):
            EngineConfig(extent_pages=0)

    def test_buffer_pool_minimum(self):
        with pytest.raises(ConfigError):
            EngineConfig(buffer_pool_pages=4)

    def test_fill_factor_bounds(self):
        with pytest.raises(ConfigError):
            EngineConfig(leaf_fill_factor=0.0)
        with pytest.raises(ConfigError):
            EngineConfig(leaf_fill_factor=1.5)

    def test_bloom_fpr_bounds(self):
        with pytest.raises(ConfigError):
            EngineConfig(bloom_fpr=0.0)
        with pytest.raises(ConfigError):
            EngineConfig(bloom_fpr=1.0)

    def test_cost_model_is_per_instance(self):
        a, b = EngineConfig(), EngineConfig()
        assert a.cost is not b.cost

    def test_cost_model_frozen(self):
        cost = CostModel()
        with pytest.raises(Exception):
            cost.compare = 1.0  # type: ignore[misc]
