"""Unit tests for the executor's two visibility paths."""


from repro.config import EngineConfig
from repro.engine import Database


def setup(kind="mvpbt", reference="physical", storage="sias", **opts):
    db = Database(EngineConfig(buffer_pool_pages=128))
    db.create_table("r", [("a", "int"), ("b", "str")], storage=storage)
    db.create_index("ix", "r", ["a"], kind=kind, reference=reference, **opts)
    return db


class TestIndexOnlyPath:
    def test_lookup_returns_row_hits(self):
        db = setup()
        t = db.begin()
        db.insert(t, "r", (1, "x"))
        t.commit()
        r = db.begin()
        hits = db.executor.lookup(r, db.catalog.index("ix"), (1,))
        assert len(hits) == 1
        assert hits[0].row == (1, "x")
        assert hits[0].version.vid == 1

    def test_count_without_row_fetches(self):
        db = setup()
        t = db.begin()
        for i in range(10):
            db.insert(t, "r", (i, "x"))
        t.commit()
        db.flush_all()
        table_stats = db.pool.stats_for(db.catalog.table("r").file)
        before = table_stats.requests
        r = db.begin()
        assert db.executor.count(r, db.catalog.index("ix"), (2,), (5,)) == 4
        assert table_stats.requests == before

    def test_scan_fetches_rows_for_projection(self):
        db = setup()
        t = db.begin()
        for i in range(5):
            db.insert(t, "r", (i, f"v{i}"))
        t.commit()
        r = db.begin()
        hits = db.executor.scan(r, db.catalog.index("ix"), (1,), (3,))
        assert [h.row[1] for h in hits] == ["v1", "v2", "v3"]


class TestCandidatePath:
    def test_ablated_mvpbt_resolves_against_table(self):
        db = setup(index_only_visibility=False, enable_gc=False)
        t = db.begin()
        db.insert(t, "r", (1, "x"))
        t.commit()
        t2 = db.begin()
        db.update_by_key(t2, "ix", (1,), {"b": "y"})
        t2.commit()
        r = db.begin()
        hits = db.executor.lookup(r, db.catalog.index("ix"), (1,))
        assert len(hits) == 1              # deduped despite 2 candidates
        assert hits[0].row == (1, "y")

    def test_pbt_key_recheck(self):
        db = setup(kind="pbt")
        t = db.begin()
        db.insert(t, "r", (1, "x"))
        t.commit()
        t2 = db.begin()
        db.update_by_key(t2, "ix", (1,), {"a": 5})
        t2.commit()
        r = db.begin()
        # candidate at key 1 resolves to a version whose key is now 5
        assert db.executor.lookup(r, db.catalog.index("ix"), (1,)) == []
        hits = db.executor.lookup(r, db.catalog.index("ix"), (5,))
        assert [h.row for h in hits] == [(5, "x")]

    def test_logical_resolution_skips_dropped_vids(self):
        db = setup(kind="btree", reference="logical")
        t = db.begin()
        db.insert(t, "r", (1, "x"))
        t.commit()
        t2 = db.begin()
        db.delete_by_key(t2, "ix", (1,))
        t2.commit()
        db.vacuum("r")     # drops the chain and its VID
        r = db.begin()
        assert db.executor.lookup(r, db.catalog.index("ix"), (1,)) == []

    def test_heap_range_scan_recheck(self):
        db = setup(kind="btree", storage="heap")
        t = db.begin()
        for i in range(10):
            db.insert(t, "r", (i, "x"))
        t.commit()
        t2 = db.begin()
        db.update_by_key(t2, "ix", (3,), {"a": 30})   # leaves old entry
        t2.commit()
        r = db.begin()
        hits = db.executor.scan(r, db.catalog.index("ix"), (0,), (9,))
        assert sorted(h.row[0] for h in hits) == [0, 1, 2, 4, 5, 6, 7, 8, 9]


class TestRowHit:
    def test_row_property(self):
        db = setup()
        t = db.begin()
        db.insert(t, "r", (1, "x"))
        t.commit()
        r = db.begin()
        hit = db.executor.lookup(r, db.catalog.index("ix"), (1,))[0]
        assert hit.row == hit.version.data
