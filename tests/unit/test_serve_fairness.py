"""Scheduler fairness: long scans cannot starve short transactions.

The FIFO engine slot gives a hard bound — a request that finds ``w``
waiters ahead is granted after exactly ``w`` grants, so with S
concurrently active sessions no operation waits more than S ticks.  The
first test pins the exact bound on the scheduler in isolation with a
deterministic arrival order; the serve-level tests drive a long sliced
scan against short writers and assert the bound held for every commit,
and that the writers really did make progress *while* the scan was
mid-flight (a gated handshake, not a timing assumption).
"""

import threading

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.serve import ServeConfig
from repro.serve.scheduler import FairScheduler

pytestmark = pytest.mark.concurrency


class TestSchedulerBound:
    def test_wait_ticks_equal_waiters_ahead(self):
        """With a deterministic arrival order, the FIFO bound is exact:
        waiter i (0-based) has i waiters ahead, so exactly i grants
        happen between its enqueue and its own grant (the slot already
        held at enqueue time is not a grant)."""
        sched = FairScheduler()
        waits: dict[int, int] = {}
        done: list[threading.Thread] = []

        sched.acquire("holder")
        for i in range(4):
            def waiter(slot: int = i) -> None:
                ticks = sched.acquire(f"w{slot}")
                waits[slot] = ticks
                sched.release()
            t = threading.Thread(target=waiter)
            t.start()
            done.append(t)
            while sched.queue_depth < i + 1:   # deterministic arrival order
                threading.Event().wait(0.001)
        sched.release()
        for t in done:
            t.join()
        assert waits == {0: 0, 1: 1, 2: 2, 3: 3}


def make_served_db(slice_rows: int = 16):
    db = Database(EngineConfig(durability=True))
    db.create_table("t", [("k", "int"), ("v", "str")])
    db.create_index("ix", "t", ["k"], kind="mvpbt",
                    index_only_visibility=True)
    server = db.serve(ServeConfig(max_sessions=16,
                                  scan_slice_rows=slice_rows))
    with server.session() as s:
        s.begin()
        for i in range(400):
            s.insert("t", (i, f"v{i}"))
        s.commit()
    return db, server


class TestServeFairness:
    def test_writers_commit_while_scan_is_mid_flight(self):
        """Gated handshake: the scan pulls one slice, then writers run all
        their commits to completion, then the scan finishes.  Works only
        because the scan releases the engine slot between slices."""
        db, server = make_served_db(slice_rows=16)
        first_slice = threading.Event()
        writers_done = threading.Event()
        scanned: list = []

        def scanner() -> None:
            with server.session() as s:
                s.begin()
                scan = s.batch_scan("ix", None, None)
                for _ in range(16):          # exactly the first slice
                    scanned.append(next(scan))
                first_slice.set()
                assert writers_done.wait(10.0), "writers starved"
                scanned.extend(scan)         # snapshot-exact tail
                s.abort()

        def writer(slot: int) -> None:
            assert first_slice.wait(10.0)
            with server.session() as s:
                for i in range(10):
                    s.begin()
                    s.insert("t", (1000 + slot * 100 + i, "w"))
                    s.commit()

        writer_threads = [threading.Thread(target=writer, args=(i,))
                          for i in range(4)]
        scan_thread = threading.Thread(target=scanner)
        scan_thread.start()
        for t in writer_threads:
            t.start()
        for t in writer_threads:
            t.join()
        writers_done.set()
        scan_thread.join()

        # the scan saw its snapshot exactly — none of the 40 mid-scan rows
        assert [k for k, _v in scanned] == list(range(400))
        assert db.txn.committed_count == 1 + 40
        server.close()

    def test_commit_wait_bounded_by_session_count(self):
        """Under free-running contention (1 long scan + 6 writers), no
        grant of any kind waited more than the number of concurrently
        active sessions — the FIFO bound, measured end-to-end."""
        db, server = make_served_db(slice_rows=8)
        threads_total = 7
        errors: list[BaseException] = []

        def scanner() -> None:
            try:
                with server.session() as s:
                    s.begin()
                    rows = list(s.batch_scan("ix", None, None))
                    assert len(rows) >= 400
                    s.abort()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer(slot: int) -> None:
            try:
                with server.session() as s:
                    for i in range(25):
                        s.begin()
                        s.insert("t", (2000 + slot * 100 + i, "w"))
                        s.commit()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=scanner)] + [
            threading.Thread(target=writer, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = server.scheduler.stats()
        for kind, ks in stats.items():
            assert ks["max_wait_ticks"] <= threads_total, (
                f"{kind} waited {ks['max_wait_ticks']} ticks with only "
                f"{threads_total} sessions — FIFO bound violated")
        assert db.txn.committed_count == 1 + 6 * 25
        server.close()
