"""Unit tests for the blktrace-style I/O trace."""

from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.sim.trace import IOTrace, TraceEntry


class TestIOTrace:
    def test_disabled_by_default(self):
        trace = IOTrace()
        trace.record(0.0, 0, 8192, "W")
        assert len(trace) == 0

    def test_records_when_enabled(self):
        trace = IOTrace()
        trace.enable()
        trace.record(1.0, 100, 8192, "W")
        assert len(trace) == 1
        entry = trace.entries()[0]
        assert entry == TraceEntry(1.0, 100, 16, "W")

    def test_kind_filter(self):
        trace = IOTrace()
        trace.enable()
        trace.record(0.0, 0, 8192, "W")
        trace.record(0.0, 16, 8192, "R")
        assert len(trace.entries("W")) == 1
        assert len(trace.entries("R")) == 1

    def test_sequential_fraction_all_sequential(self):
        trace = IOTrace()
        trace.enable()
        for i in range(5):
            trace.record(float(i), i * 16, 8192, "W")
        assert trace.sequential_fraction("W") == 1.0

    def test_sequential_fraction_all_random(self):
        trace = IOTrace()
        trace.enable()
        for i in range(5):
            trace.record(float(i), i * 1000, 8192, "W")
        assert trace.sequential_fraction("W") == 0.0

    def test_lba_span(self):
        trace = IOTrace()
        trace.enable()
        trace.record(0.0, 100, 8192, "W")
        trace.record(0.0, 500, 8192, "W")
        assert trace.lba_span("W") == (100, 516)

    def test_clear(self):
        trace = IOTrace()
        trace.enable()
        trace.record(0.0, 0, 8192, "W")
        trace.clear()
        assert len(trace) == 0

    def test_device_integration(self):
        clock = SimClock()
        trace = IOTrace()
        dev = SimulatedDevice(UNIT_TEST_PROFILE, clock, trace)
        offset = dev.allocate(65536)
        trace.enable()
        dev.write(offset, 65536)
        dev.write(offset + 65536 - 65536 + 65536, 8192)  # adjacent
        assert len(trace.entries("W")) == 2
        assert trace.sequential_fraction("W") == 1.0
