"""Fixture tests for reprolint's whole-program concurrency rules.

R9 (lock-order), R10 (slot-confinement) and R11 (2PC protocol) run over
a cross-module call graph, so their fixtures are little *trees* written
under ``tmp_path`` (with a ``repro/`` path component so module scoping
applies) rather than single snippets.  Every rule has good fixtures
(must stay silent) and bad fixtures (must fire with the expected
diagnostic); the suite also pins the S2 stale-pragma semantics and the
CLI edge contract (E0 on unparseable input, JSON schema stability,
exit codes 0/1/2).
"""

import json
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import Linter, Project, rule_by_id  # noqa: E402
from tools.reprolint.cli import main  # noqa: E402


def lint_tree(tmp_path, files, rule_ids, *, strict=True):
    """Write a fixture tree and lint it with a rule subset."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    rules = [rule_by_id(rid)() for rid in rule_ids]
    linter = Linter(rules, Project(), strict=strict)
    return linter.lint_paths([tmp_path]), linter


def fired(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


# ------------------------------------------------------------ R9 lock-order

class TestR9LockOrder:
    def test_ascending_acquisition_is_clean(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/good.py": """
            class App:
                def __init__(self) -> None:
                    self.mgr = OrderedLock("app.mgr", RANK_TXN_MANAGER)
                    self.log = OrderedLock("app.log", RANK_TXN_COMMITLOG)

                def ok(self) -> None:
                    with self.mgr:
                        with self.log:
                            pass
            """}, ["R9"])
        assert fired(findings, "R9") == []

    def test_descending_acquisition_fires(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/bad.py": """
            class App:
                def __init__(self) -> None:
                    self.q = OrderedLock("app.queue", RANK_GROUP_QUEUE)
                    self.mgr = OrderedLock("app.mgr", RANK_TXN_MANAGER)

                def bad(self) -> None:
                    with self.q:
                        with self.mgr:
                            pass
            """}, ["R9"])
        hits = fired(findings, "R9")
        assert len(hits) == 1
        assert "ranks must strictly ascend" in hits[0].message
        assert "app.mgr" in hits[0].message

    def test_transitive_violation_across_modules_fires(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/app/front.py": """
                class Front:
                    def __init__(self) -> None:
                        self.log = OrderedLock("front.log",
                                               RANK_TXN_COMMITLOG)
                        self.helper = Helper()

                    def bad(self) -> None:
                        with self.log:
                            self.helper.refresh()
                """,
            "repro/app/back.py": """
                class Helper:
                    def __init__(self) -> None:
                        self.lock = OrderedLock("helper.lock",
                                                RANK_TXN_MANAGER)

                    def refresh(self) -> None:
                        with self.lock:
                            pass
                """}, ["R9"])
        hits = fired(findings, "R9")
        assert len(hits) == 1
        assert "may transitively acquire" in hits[0].message
        assert "helper.lock" in hits[0].message
        assert hits[0].path.endswith("front.py")

    def test_transitive_ascending_call_is_clean(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/app/front.py": """
                class Front:
                    def __init__(self) -> None:
                        self.mgr = OrderedLock("front.mgr",
                                               RANK_TXN_MANAGER)
                        self.helper = Helper()

                    def ok(self) -> None:
                        with self.mgr:
                            self.helper.refresh()
                """,
            "repro/app/back.py": """
                class Helper:
                    def __init__(self) -> None:
                        self.lock = OrderedLock("helper.lock",
                                                RANK_GROUP_QUEUE)

                    def refresh(self) -> None:
                        with self.lock:
                            pass
                """}, ["R9"])
        assert fired(findings, "R9") == []

    def test_unranked_raw_lock_fires(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/raw.py": """
            import threading

            class App:
                def __init__(self) -> None:
                    self.m = threading.Lock()
            """}, ["R9"])
        hits = fired(findings, "R9")
        assert len(hits) == 1
        assert "has no rank" in hits[0].message

    def test_annotated_raw_lock_is_ranked(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/raw.py": """
            import threading

            class App:
                def __init__(self) -> None:
                    # reprolint: lock-rank=TXN_MANAGER
                    self.m = threading.Lock()
                    self.log = OrderedLock("app.log", RANK_TXN_COMMITLOG)

                def ok(self) -> None:
                    with self.m:
                        with self.log:
                            pass
            """}, ["R9"])
        assert fired(findings, "R9") == []

    def test_unknown_rank_name_fires(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/raw.py": """
            import threading

            class App:
                def __init__(self) -> None:
                    # reprolint: lock-rank=NO_SUCH_RANK
                    self.m = threading.Lock()
            """}, ["R9"])
        hits = fired(findings, "R9")
        assert len(hits) == 1
        assert "unknown rank" in hits[0].message

    def test_leaf_lock_allows_nothing_inside(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/leaf.py": """
            import threading

            class App:
                def __init__(self) -> None:
                    # reprolint: lock-rank=LEAF
                    self.m = threading.Lock()
                    self.q = OrderedLock("app.q", RANK_GROUP_QUEUE)

                def bad(self) -> None:
                    with self.m:
                        with self.q:
                            pass
            """}, ["R9"])
        hits = fired(findings, "R9")
        assert len(hits) == 1
        assert "rank LEAF" in hits[0].message

    def test_reentrant_annotation_allows_reacquisition(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/re.py": """
            import threading

            class App:
                def __init__(self) -> None:
                    # reprolint: lock-rank=TXN_MANAGER, reentrant
                    self.r = threading.RLock()

                def ok(self) -> None:
                    with self.r:
                        with self.r:
                            pass
            """}, ["R9"])
        assert fired(findings, "R9") == []

    def test_note_acquired_seeds_callee_summary(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/note.py": """
            def publish() -> None:
                note_acquired(RANK_ENGINE, "serve.engine")

            class App:
                def __init__(self) -> None:
                    self.q = OrderedLock("app.q", RANK_GROUP_QUEUE)

                def bad(self) -> None:
                    with self.q:
                        publish()
            """}, ["R9"])
        hits = fired(findings, "R9")
        assert len(hits) == 1
        assert "serve.engine" in hits[0].message

    def test_condition_inherits_lock_rank(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/cond.py": """
            import threading

            class App:
                def __init__(self) -> None:
                    # reprolint: lock-rank=GROUP_QUEUE
                    self.m = threading.Lock()
                    self.cond = threading.Condition(self.m)
                    self.mgr = OrderedLock("app.mgr", RANK_TXN_MANAGER)

                def bad(self) -> None:
                    with self.cond:
                        with self.mgr:
                            pass
            """}, ["R9"])
        hits = fired(findings, "R9")
        assert len(hits) == 1
        assert "app.mgr" in hits[0].message

    def test_program_finding_respects_pragma(self, tmp_path):
        findings, linter = lint_tree(tmp_path, {"repro/app/sup.py": """
            class App:
                def __init__(self) -> None:
                    self.q = OrderedLock("app.q", RANK_GROUP_QUEUE)
                    self.mgr = OrderedLock("app.mgr", RANK_TXN_MANAGER)

                def tolerated(self) -> None:
                    with self.q:
                        # reprolint: disable-next=R9 -- fixture: documented inversion
                        with self.mgr:
                            pass
            """}, ["R9"])
        assert fired(findings, "R9") == []
        assert fired(findings, "S2") == []      # the pragma is *used*
        assert linter.suppressed_count == 1


# ------------------------------------------------------ R10 slot-confinement

class TestR10SlotConfinement:
    SCHED = """
        class FairScheduler:
            def slot(self, kind: str) -> "FairScheduler":
                return self

            def __enter__(self) -> "FairScheduler":
                return self

            def __exit__(self, *exc: object) -> None:
                pass
        """

    def test_slot_confined_access_is_clean(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/serve/sched.py": self.SCHED,
            "repro/serve/good.py": """
                from .sched import FairScheduler

                class Handler:
                    def __init__(self, db: object) -> None:
                        self._db = db
                        self._sched = FairScheduler()

                    def read(self, key: int) -> int:
                        with self._sched.slot("read"):
                            return self._db.lookup(key)

                    def component(self) -> object:
                        return self._db.clock
                """}, ["R10"])
        assert fired(findings, "R10") == []

    def test_out_of_slot_call_fires(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/serve/bad.py": """
                class Handler:
                    def __init__(self, db: object) -> None:
                        self._db = db

                    def read(self, key: int) -> int:
                        return self._db.lookup(key)
                """}, ["R10"])
        hits = fired(findings, "R10")
        assert len(hits) == 1
        assert "calls lookup() through engine state" in hits[0].message

    def test_deep_read_and_store_fire(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/serve/bad.py": """
                class Handler:
                    def __init__(self, db: object) -> None:
                        self._db = db

                    def peek(self) -> int:
                        return self._db.catalog.version

                    def poke(self) -> None:
                        self._db.dirty = True
                """}, ["R10"])
        hits = fired(findings, "R10")
        assert len(hits) == 2
        assert any("reads engine-internal state" in h.message
                   for h in hits)
        assert any("writes to engine state" in h.message for h in hits)

    def test_confinement_is_inherited_through_helpers(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/serve/sched.py": self.SCHED,
            "repro/serve/good.py": """
                from .sched import FairScheduler

                class Handler:
                    def __init__(self, db: object) -> None:
                        self._db = db
                        self._sched = FairScheduler()

                    def read(self, key: int) -> int:
                        with self._sched.slot("read"):
                            return self._fetch(key)

                    def _fetch(self, key: int) -> int:
                        return self._db.lookup(key)
                """}, ["R10"])
        assert fired(findings, "R10") == []

    def test_helper_with_out_of_slot_caller_fires(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/serve/sched.py": self.SCHED,
            "repro/serve/bad.py": """
                from .sched import FairScheduler

                class Handler:
                    def __init__(self, db: object) -> None:
                        self._db = db
                        self._sched = FairScheduler()

                    def read(self, key: int) -> int:
                        with self._sched.slot("read"):
                            return self._fetch(key)

                    def sneak(self, key: int) -> int:
                        return self._fetch(key)

                    def _fetch(self, key: int) -> int:
                        return self._db.lookup(key)
                """}, ["R10"])
        hits = fired(findings, "R10")
        assert len(hits) == 1
        assert hits[0].message.endswith("outside the engine slot")

    def test_confined_annotation_marks_root(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/serve/bad.py": """
                class Cache:
                    def __init__(self, engine: object) -> None:
                        # reprolint: confined=engine
                        self._engine = engine

                    def flush(self) -> None:
                        self._engine.flush()
                """}, ["R10"])
        hits = fired(findings, "R10")
        assert len(hits) == 1
        assert "calls flush() through engine state" in hits[0].message

    def test_outside_serve_is_out_of_scope(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {
            "repro/shard/router.py": """
                class Router:
                    def __init__(self, db: object) -> None:
                        self._db = db

                    def read(self, key: int) -> int:
                        return self._db.lookup(key)
                """}, ["R10"])
        assert fired(findings, "R10") == []


# --------------------------------------------------------- R11 2PC protocol

_GOOD_ROUTER = """
    class Router:
        def commit(self, txn: object) -> None:
            touched = self.touched(txn)
            if len(touched) == 1:
                self.shards[touched[0]].txn.commit(txn)
                for j in self.others(touched):
                    self.shards[j].txn.finish_commit(txn)
            elif touched:
                for k in touched:
                    self.shards[k].durability.append_prepare(txn)
                self.coordinator.log_decision(txn.id)
                for k in touched:
                    self.shards[k].durability.append_commit_marker(txn.id)
                for db in self.shards:
                    db.txn.finish_commit(txn)
            else:
                for db in self.shards:
                    db.txn.finish_commit(txn)
            self.coordinator.finish(txn.id)

        def abort(self, txn: object) -> None:
            for db in self.shards:
                db.txn.abort(txn)
            self.coordinator.finish(txn.id)
    """


class TestR11Protocol:
    def test_protocol_shaped_commit_is_clean(self, tmp_path):
        findings, _ = lint_tree(
            tmp_path, {"repro/shard/router.py": _GOOD_ROUTER}, ["R11"])
        assert fired(findings, "R11") == []

    def test_marker_before_decision_fires(self, tmp_path):
        bad = _GOOD_ROUTER.replace(
            "self.coordinator.log_decision(txn.id)\n"
            "                for k in touched:\n"
            "                    self.shards[k].durability"
            ".append_commit_marker(txn.id)",
            "for k in touched:\n"
            "                    self.shards[k].durability"
            ".append_commit_marker(txn.id)\n"
            "                self.coordinator.log_decision(txn.id)")
        assert "log_decision" in bad      # the rewrite really swapped them
        findings, _ = lint_tree(
            tmp_path, {"repro/shard/router.py": bad}, ["R11"])
        hits = fired(findings, "R11")
        assert len(hits) == 1
        assert "P, M, D" in hits[0].message
        assert "not an accepted decision order" in hits[0].message

    def test_missing_decision_fires(self, tmp_path):
        bad = _GOOD_ROUTER.replace(
            "                self.coordinator.log_decision(txn.id)\n", "")
        findings, _ = lint_tree(
            tmp_path, {"repro/shard/router.py": bad}, ["R11"])
        hits = fired(findings, "R11")
        assert len(hits) == 1
        assert "P, M, F, E" in hits[0].message

    def test_op_call_outside_coordinator_layer_fires(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/serve/sneaky.py": """
            class Committer:
                def flush(self, txn: object) -> None:
                    self.durability.append_prepare(txn)
            """}, ["R11"])
        hits = fired(findings, "R11")
        assert len(hits) == 1
        assert "outside the coordinator layer" in hits[0].message

    def test_missing_abort_fires(self, tmp_path):
        bad = _GOOD_ROUTER.split("    def abort")[0]
        findings, _ = lint_tree(
            tmp_path, {"repro/shard/router.py": bad}, ["R11"])
        hits = fired(findings, "R11")
        assert len(hits) == 1
        assert "has no abort()" in hits[0].message

    def test_abort_without_coordinator_release_fires(self, tmp_path):
        bad = _GOOD_ROUTER.replace(
            "            for db in self.shards:\n"
            "                db.txn.abort(txn)\n"
            "            self.coordinator.finish(txn.id)",
            "            for db in self.shards:\n"
            "                db.txn.abort(txn)")
        findings, _ = lint_tree(
            tmp_path, {"repro/shard/router.py": bad}, ["R11"])
        hits = fired(findings, "R11")
        assert len(hits) == 1
        assert "release the coordinator" in hits[0].message

    def test_raise_terminated_paths_are_exempt(self, tmp_path):
        guarded = _GOOD_ROUTER.replace(
            "            touched = self.touched(txn)",
            "            touched = self.touched(txn)\n"
            "            if not self.active(txn):\n"
            "                raise ValueError(txn)")
        findings, _ = lint_tree(
            tmp_path, {"repro/shard/router.py": guarded}, ["R11"])
        assert fired(findings, "R11") == []


# -------------------------------------------------------- S2 stale pragmas

class TestS2StalePragmas:
    def test_stale_pragma_fires_under_strict(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/clean.py": """
            def add(a: int, b: int) -> int:
                # reprolint: disable-next=R1 -- nothing here fires R1
                return a + b
            """}, ["R1"], strict=True)
        hits = fired(findings, "S2")
        assert len(hits) == 1
        assert "matches no finding" in hits[0].message

    def test_stale_pragma_silent_without_strict(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/clean.py": """
            def add(a: int, b: int) -> int:
                # reprolint: disable-next=R1 -- nothing here fires R1
                return a + b
            """}, ["R1"], strict=False)
        assert fired(findings, "S2") == []

    def test_used_pragma_is_not_stale(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/used.py": """
            import time

            def stamp() -> float:
                # reprolint: disable-next=R1 -- fixture wall clock
                return time.time()
            """}, ["R1"], strict=True)
        assert fired(findings, "S2") == []
        assert fired(findings, "R1") == []

    def test_pragma_for_deselected_rule_is_not_judged(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/other.py": """
            def add(a: int, b: int) -> int:
                # reprolint: disable-next=R4 -- only judged when R4 runs
                return a + b
            """}, ["R1"], strict=True)
        assert fired(findings, "S2") == []

    def test_all_pragma_is_not_judged(self, tmp_path):
        findings, _ = lint_tree(tmp_path, {"repro/app/allp.py": """
            def add(a: int, b: int) -> int:
                # reprolint: disable-next=all -- blanket: cannot be judged
                return a + b
            """}, ["R1"], strict=True)
        assert fired(findings, "S2") == []


# ------------------------------------------------------------- CLI edges

class TestCLIEdges:
    def test_unparseable_file_is_e0_and_exits_one(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "E0" in out and "cannot parse" in out

    def test_e0_keeps_the_json_schema(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"findings", "summary"}
        assert set(payload["summary"]) == {"files_checked", "findings",
                                           "suppressed"}
        record = payload["findings"][0]
        assert set(record) == {"rule", "name", "path", "line", "col",
                               "message", "hint"}
        assert record["rule"] == "E0"

    def test_exit_code_contract(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def add(a: int, b: int) -> int:\n"
                         "    return a + b\n")
        assert main([str(clean)]) == 0                       # no findings
        capsys.readouterr()
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        assert main([str(bad), "--select", "R1"]) == 1       # findings
        capsys.readouterr()
        assert main([str(clean), "--select", "R99"]) == 2    # usage error
        assert "unknown rule" in capsys.readouterr().err

    def test_json_findings_are_sorted_and_stable(self, tmp_path, capsys):
        (tmp_path / "b.py").write_text("import time\nx = time.time()\n"
                                       "y = time.time()\n")
        (tmp_path / "a.py").write_text("import time\nz = time.time()\n")
        assert main([str(tmp_path), "--format", "json",
                     "--select", "R1"]) == 1
        first = json.loads(capsys.readouterr().out)
        assert main([str(tmp_path), "--format", "json",
                     "--select", "R1"]) == 1
        second = json.loads(capsys.readouterr().out)
        assert first == second
        keys = [(f["path"], f["line"]) for f in first["findings"]]
        assert keys == sorted(keys)

    def test_program_rules_listed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R9", "R10", "R11"):
            assert f"{rule_id} " in out
