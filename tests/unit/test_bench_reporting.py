"""Unit tests for benchmark reporting and metric capture."""

from repro.bench.harness import buffer_stats_by_group, engine_config, fresh_database
from repro.bench.metrics import MetricWindow
from repro.bench.reporting import format_series, format_table


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table("T", ["name", "value"],
                           [["a", 1.0], ["bb", 123456.0]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_numbers(self):
        out = format_table("T", ["v"], [[0.123456], [12.3], [1234567.0]])
        assert "0.123" in out
        assert "12.3" in out
        assert "1,234,567" in out

    def test_format_series(self):
        out = format_series("S", "x", [1, 2],
                            {"a": [10.0, 20.0], "b": [1.0, 2.0]})
        assert "x" in out and "a" in out and "b" in out
        assert out.count("\n") == 4


class TestHarness:
    def test_engine_config_defaults(self):
        cfg = engine_config()
        assert cfg.buffer_pool_pages == 256
        assert cfg.partition_buffer_bytes == 64 * 8192

    def test_metric_window(self):
        db = fresh_database()
        window = MetricWindow(db).start()
        db.clock.advance(2.0)
        window.stop()
        assert window.elapsed == 2.0
        assert window.throughput(120, per=60.0) == 3600.0

    def test_buffer_stats_by_group(self):
        db = fresh_database()
        db.create_table("t", [("a", "int")])
        db.create_index("i", "t", ["a"], kind="btree")
        txn = db.begin()
        for i in range(50):
            db.insert(txn, "t", (i,))
        txn.commit()
        r = db.begin()
        db.select(r, "i", (25,))
        r.commit()
        groups = buffer_stats_by_group(db)
        assert groups["index"].requests > 0
