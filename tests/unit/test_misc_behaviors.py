"""Unit tests for assorted behaviours not covered elsewhere."""


from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.partition import PersistedPartition
from repro.core.tree import MVPBT
from repro.index.base import TOP, prefix_bounds
from repro.index.lsm.tree import LSMTree
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager
from repro.txn.snapshot import Snapshot


def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    return clock, device


class TestTopSentinel:
    def test_top_greater_than_everything(self):
        assert TOP > 10 ** 18
        assert TOP > "zzzz"
        assert not (TOP < 5)
        assert TOP >= TOP
        assert TOP == TOP
        assert TOP.__gt__(TOP) is False

    def test_tuple_comparisons_with_top(self):
        assert (1, 5) < (1, TOP)
        assert (1, TOP) < (2, 0)
        assert (1, "abc") < (1, TOP)

    def test_prefix_bounds(self):
        lo, hi = prefix_bounds((3, 7))
        assert lo == (3, 7)
        assert lo <= (3, 7, 0) < hi
        assert lo <= (3, 7, "anything") < hi
        assert not ((3, 8) < hi)

    def test_top_usable_in_sets(self):
        assert len({TOP, TOP}) == 1


class TestLSMLevels:
    def test_multiple_levels_form(self):
        clock, device = env()
        tree = LSMTree("l", PageFile("l", device, 1024, 8), BufferPool(256),
                       memtable_bytes=512, l0_component_limit=1,
                       level_base_bytes=1024, size_ratio=2)
        for i in range(600):
            tree.put((f"k{i:05d}",), "v" * 10)
        deep_levels = sum(1 for s in tree._levels if s is not None)
        assert deep_levels >= 2
        # data still intact at every level
        for probe in (0, 299, 599):
            assert tree.get((f"k{probe:05d}",)) == "v" * 10

    def test_level_sizes_reporting(self):
        clock, device = env()
        tree = LSMTree("l", PageFile("l", device, 1024, 8), BufferPool(64),
                       memtable_bytes=512)
        tree.put(("a",), "v")
        sizes = tree.level_sizes
        assert sizes[0] > 0            # memtable
        assert all(s >= 0 for s in sizes)


class TestMinTsFilter:
    def _partition(self, min_ts, max_ts):
        clock, device = env()
        pool = BufferPool(16)
        file = PageFile("p", device, 8192, 8)
        from repro.index.runs import PersistedRun
        run = PersistedRun(file, pool, [], key_of=lambda r: r,
                           size_of=lambda r: 8)
        return PersistedPartition(number=0, run=run, bloom=None,
                                  prefix_bloom=None, min_ts=min_ts,
                                  max_ts=max_ts)

    def test_old_snapshot_skips_new_partition(self):
        part = self._partition(min_ts=100, max_ts=200)
        snap = Snapshot(owner=50, xmax=50, xmin=50)
        assert not part.possibly_visible_to(snap)

    def test_new_snapshot_sees_old_partition(self):
        part = self._partition(min_ts=10, max_ts=20)
        snap = Snapshot(owner=50, xmax=50, xmin=50)
        assert part.possibly_visible_to(snap)

    def test_own_writes_keep_partition_visible(self):
        """Regression: a partition holding only the caller's own records
        must not be skipped (owner ts == xmax fails the < test)."""
        part = self._partition(min_ts=50, max_ts=50)
        snap = Snapshot(owner=50, xmax=50, xmin=50)
        assert part.possibly_visible_to(snap)


class TestMVPBTBounds:
    def _tree(self):
        clock, device = env()
        mgr = TransactionManager(clock)
        tree = MVPBT("b", PageFile("b", device, 8192, 8), BufferPool(64),
                     PartitionBuffer(1 << 20), mgr)
        return mgr, tree

    def test_exclusive_bounds(self):
        mgr, tree = self._tree()
        t = mgr.begin()
        for i in range(10):
            tree.insert(t, (i,), RecordID(0, i), vid=i + 1)
        t.commit()
        r = mgr.begin()
        hits = tree.range_scan(r, (2,), (7,), lo_incl=False, hi_incl=False)
        assert [h.key[0] for h in hits] == [3, 4, 5, 6]

    def test_payload_flows_through_updates(self):
        mgr, tree = self._tree()
        t = mgr.begin()
        tree.insert(t, (1,), RecordID(0, 0), vid=1, payload="v0")
        t.commit()
        t2 = mgr.begin()
        tree.update_nonkey(t2, (1,), RecordID(0, 1), RecordID(0, 0), vid=1,
                           payload="v1")
        t2.commit()
        r = mgr.begin()
        assert tree.search(r, (1,))[0].payload == "v1"

    def test_search_on_empty_tree(self):
        mgr, tree = self._tree()
        r = mgr.begin()
        assert tree.search(r, (1,)) == []
        assert tree.range_scan(r, None, None) == []
        assert tree.scan_limit(r, None, 5) == []

    def test_record_count_spans_partitions(self):
        mgr, tree = self._tree()
        t = mgr.begin()
        for i in range(20):
            tree.insert(t, (i,), RecordID(0, i), vid=i + 1)
        t.commit()
        tree.evict_partition()
        t2 = mgr.begin()
        for i in range(20, 30):
            tree.insert(t2, (i,), RecordID(0, i), vid=i + 1)
        t2.commit()
        # reconciliation may merge nothing here (unique keys): exact count
        assert tree.record_count() == 30


class TestHeapFreeSpaceReuse:
    def test_vacuumed_pages_accept_new_rows(self):
        from repro.table.heap import HeapTable
        from repro.table.vacuum import vacuum_heap
        clock, device = env()
        pool = BufferPool(64)
        table = HeapTable("t", PageFile("t", device, 8192, 8), pool)
        mgr = TransactionManager(clock)
        t = mgr.begin()
        rids = [table.insert(t, (i, "x" * 400))[1] for i in range(50)]
        t.commit()
        t2 = mgr.begin()
        for rid in rids[:25]:
            table.delete(t2, rid)
        t2.commit()
        vacuum_heap(table, mgr)
        pages_before = table.file.allocated_pages
        t3 = mgr.begin()
        for i in range(10):
            table.insert(t3, (100 + i, "y" * 400))
        t3.commit()
        # reclaimed space absorbed (few or no new pages)
        assert table.file.allocated_pages <= pages_before + 1
