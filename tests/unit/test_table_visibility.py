"""Unit tests for base-table candidate resolution (the expensive path)."""

import pytest

from repro.buffer.pool import BufferPool
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.table.heap import HeapTable
from repro.table.sias import SIASTable
from repro.table.visibility import (resolve_candidates_heap,
                                    resolve_candidates_sias,
                                    version_visible_heap)
from repro.table.base import TupleVersion
from repro.txn.manager import TransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.status import CommitLog


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    pool = BufferPool(64)
    mgr = TransactionManager(clock)
    return device, pool, mgr


class TestHeapVisibilityPredicate:
    def _log(self, committed=(), aborted=()):
        log = CommitLog()
        for ts in committed:
            log.register(ts)
            log.set_committed(ts)
        for ts in aborted:
            log.register(ts)
            log.set_aborted(ts)
        return log

    def test_visible_plain_version(self):
        log = self._log(committed=[1])
        snap = Snapshot(owner=5, xmax=5, xmin=5)
        v = TupleVersion(vid=1, data=(1,), ts_create=1)
        assert version_visible_heap(v, snap, log)

    def test_invalidated_version_invisible(self):
        log = self._log(committed=[1, 2])
        snap = Snapshot(owner=5, xmax=5, xmin=5)
        v = TupleVersion(vid=1, data=(1,), ts_create=1, ts_invalidate=2)
        assert not version_visible_heap(v, snap, log)

    def test_invalidation_by_aborted_txn_ignored(self):
        log = self._log(committed=[1], aborted=[2])
        snap = Snapshot(owner=5, xmax=5, xmin=5)
        v = TupleVersion(vid=1, data=(1,), ts_create=1, ts_invalidate=2)
        assert version_visible_heap(v, snap, log)

    def test_invalidation_after_snapshot_ignored(self):
        log = self._log(committed=[1, 9])
        snap = Snapshot(owner=5, xmax=5, xmin=5)
        v = TupleVersion(vid=1, data=(1,), ts_create=1, ts_invalidate=9)
        assert version_visible_heap(v, snap, log)

    def test_tombstone_invisible(self):
        log = self._log(committed=[1])
        snap = Snapshot(owner=5, xmax=5, xmin=5)
        v = TupleVersion(vid=1, data=(), ts_create=1, is_tombstone=True)
        assert not version_visible_heap(v, snap, log)


class TestResolveHeap:
    def test_dedupes_by_tuple(self, env):
        _d, pool, mgr = env
        table = HeapTable("t", PageFile("t", _d, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        new_rid = table.update(t, rid, (1, "b"), allow_hot=False)
        t.commit()
        reader = mgr.begin()
        resolved = resolve_candidates_heap(reader, table, [rid, new_rid])
        assert len(resolved) == 1
        assert resolved[0][1].data == (1, "b")

    def test_invisible_candidates_skipped(self, env):
        _d, pool, mgr = env
        table = HeapTable("t", PageFile("t", _d, 8192, 8), pool)
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        reader = mgr.begin()   # does not see uncommitted insert
        assert resolve_candidates_heap(reader, table, [rid]) == []


class TestResolveSias:
    def test_candidate_for_stale_version_resolves_to_visible(self, env):
        _d, pool, mgr = env
        table = SIASTable("s", PageFile("s", _d, 8192, 8), pool)
        t = mgr.begin()
        vid, rid0 = table.insert(t, (1, "v0"))
        table.update(t, rid0, (1, "v1"))
        t.commit()
        reader = mgr.begin()
        resolved = resolve_candidates_sias(reader, table, [rid0])
        assert len(resolved) == 1
        assert resolved[0][1].data == (1, "v1")

    def test_long_chain_costs_proportional_io(self, env):
        device, pool, mgr = env
        table = SIASTable("s", PageFile("s", device, 8192, 8), pool,
                          flush_extent_pages=1)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "v0" + "x" * 500))
        t.commit()
        reader_old = mgr.begin()   # pins the old snapshot
        last = rid
        for i in range(40):
            t = mgr.begin()
            last = table.update(t, last, (1, f"v{i + 1}" + "x" * 500))
            t.commit()
        table.flush_tail()
        # resolving for the OLD snapshot must walk the whole chain
        small_pool_requests = pool.total_stats().requests
        resolved = resolve_candidates_sias(reader_old, table, [rid])
        walk_requests = pool.total_stats().requests - small_pool_requests
        assert resolved[0][1].data[1].startswith("v0")
        assert walk_requests >= 20   # many version fetches, the paper's cost

    def test_deleted_tuple_resolves_empty(self, env):
        _d, pool, mgr = env
        table = SIASTable("s", PageFile("s", _d, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        t.commit()
        t2 = mgr.begin()
        table.delete(t2, rid)
        t2.commit()
        reader = mgr.begin()
        assert resolve_candidates_sias(reader, table, [rid]) == []

    def test_duplicate_candidates_deduped(self, env):
        _d, pool, mgr = env
        table = SIASTable("s", PageFile("s", _d, 8192, 8), pool)
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        t.commit()
        reader = mgr.begin()
        resolved = resolve_candidates_sias(reader, table, [rid, rid])
        assert len(resolved) == 1
