"""Unit tests for the version-oblivious Partitioned B-Tree."""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.index.pbt import PartitionedBTree
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(128)
    pb = PartitionBuffer(4 * 8192)
    tree = PartitionedBTree("pbt", PageFile("pbt", device, 8192, 8), pool, pb)
    return device, pb, tree


class TestPartitioning:
    def test_eviction_when_buffer_full(self, env):
        _d, pb, tree = env
        for k in range(3000):
            tree.insert_entry((k,), RecordID(0, k % 100))
        assert tree.partition_count > 1
        assert pb.evictions >= 1

    def test_eviction_writes_sequentially(self, env):
        device, _pb, tree = env
        for k in range(12000):
            tree.insert_entry((k,), RecordID(0, k % 100))
        # several evictions into consecutively allocated extents: after the
        # first request, writes continue the device's write stream
        assert device.stats.writes >= 2
        assert device.stats.seq_writes >= device.stats.writes - tree.partition_count

    def test_search_spans_all_partitions(self, env):
        _d, _pb, tree = env
        for round_no in range(4):
            for k in range(800):
                tree.insert_entry((k,), RecordID(round_no, k % 100))
            tree.evict_partition()
        refs = tree.search((5,))
        assert len(refs) == 4          # one candidate per round
        assert {r.page for r in refs} == {0, 1, 2, 3}

    def test_range_scan_merges_partitions_sorted(self, env):
        _d, _pb, tree = env
        for k in range(0, 100, 2):
            tree.insert_entry((k,), RecordID(0, k))
        tree.evict_partition()
        for k in range(1, 100, 2):
            tree.insert_entry((k,), RecordID(1, k))
        got = [k[0] for k, _r in tree.range_scan((0,), (99,))]
        assert got == list(range(100))

    def test_bloom_filter_skips_partitions(self, env):
        _d, _pb, tree = env
        for k in range(500):
            tree.insert_entry((k,), RecordID(0, 0))
        tree.evict_partition()
        for k in range(1000, 1500):
            tree.insert_entry((k,), RecordID(1, 0))
        tree.evict_partition()
        tree.search((5000,))
        skipped = sum(p.bloom.stats.negatives
                      for p in tree.persisted_partitions)
        assert skipped == 2

    def test_version_obliviousness(self, env):
        """Multiple versions of one tuple are just multiple candidates."""
        _d, _pb, tree = env
        for version in range(5):
            tree.insert_entry((7,), RecordID(version, 0))
        assert len(tree.search((7,))) == 5


class TestMemoryPartition:
    def test_remove_entry_only_in_memory(self, env):
        _d, _pb, tree = env
        tree.insert_entry((1,), RecordID(0, 0))
        tree.evict_partition()
        tree.insert_entry((2,), RecordID(0, 1))
        assert tree.remove_entry((2,), RecordID(0, 1))
        assert not tree.remove_entry((1,), RecordID(0, 0))  # persisted

    def test_entry_count(self, env):
        _d, _pb, tree = env
        for k in range(100):
            tree.insert_entry((k,), RecordID(0, 0))
        tree.evict_partition()
        for k in range(50):
            tree.insert_entry((k,), RecordID(1, 0))
        assert tree.entry_count() == 150

    def test_evict_empty_is_noop(self, env):
        _d, _pb, tree = env
        tree.evict_partition()
        assert tree.partition_count == 1
