"""Unit tests for the KV-store engines."""

import pytest

from repro.config import EngineConfig
from repro.errors import ConfigError
from repro.kv import make_kv_store


CONFIG = EngineConfig(buffer_pool_pages=64,
                      partition_buffer_bytes=16 * 8192)

ENGINES = ("btree", "lsm", "mvpbt")


@pytest.fixture(params=ENGINES)
def store(request):
    return make_kv_store(request.param, CONFIG)


class TestCommonSemantics:
    """All three engines must agree on KV semantics."""

    def test_put_get(self, store):
        store.put("k1", "v1")
        assert store.get("k1") == "v1"

    def test_get_missing(self, store):
        assert store.get("missing") is None

    def test_overwrite(self, store):
        store.put("k", "v1")
        store.put("k", "v2")
        assert store.get("k") == "v2"

    def test_delete(self, store):
        store.put("k", "v")
        store.delete("k")
        assert store.get("k") is None

    def test_delete_missing_is_noop(self, store):
        store.delete("missing")
        assert store.get("missing") is None

    def test_reinsert_after_delete(self, store):
        store.put("k", "v1")
        store.delete("k")
        store.put("k", "v2")
        assert store.get("k") == "v2"

    def test_scan_ordered(self, store):
        for i in (3, 1, 4, 1, 5, 9, 2, 6):
            store.put(f"key{i}", f"v{i}")
        got = store.scan("key2", 3)
        assert got == [("key2", "v2"), ("key3", "v3"), ("key4", "v4")]

    def test_scan_skips_deleted(self, store):
        for i in range(5):
            store.put(f"k{i}", "v")
        store.delete("k2")
        got = [k for k, _v in store.scan("k0", 10)]
        assert got == ["k0", "k1", "k3", "k4"]

    def test_scan_returns_latest_values(self, store):
        store.put("a", "old")
        store.put("a", "new")
        assert store.scan("a", 1) == [("a", "new")]

    def test_many_keys_survive_structure_maintenance(self, store):
        """Enough data to force evictions / flushes / splits."""
        for i in range(3000):
            store.put(f"key{i:06d}", f"value-{i}" * 5)
        for i in range(0, 3000, 7):
            store.put(f"key{i:06d}", "updated")
        for probe in (0, 7, 1234, 2999):
            expected = "updated" if probe % 7 == 0 else f"value-{probe}" * 5
            assert store.get(f"key{probe:06d}") == expected

    def test_stats_counters(self, store):
        store.put("a", "1")
        store.get("a")
        store.scan("a", 1)
        store.delete("a")
        assert store.stats.reads == 1
        assert store.stats.scans == 1
        assert store.stats.deletes == 1


class TestFactory:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_kv_store("rocksdb", CONFIG)

    def test_engines_report_names(self):
        for kind in ENGINES:
            assert make_kv_store(kind, CONFIG).name == kind


class TestEngineCharacteristics:
    def test_mvpbt_writes_are_appends(self):
        store = make_kv_store("mvpbt", CONFIG)
        for i in range(3000):
            store.put(f"key{i:06d}", "v" * 50)
        dev = store.env.device
        assert dev.stats.seq_writes >= dev.stats.rand_writes

    def test_btree_updates_cause_random_writes(self):
        store = make_kv_store("btree", CONFIG, value_bytes=400)
        for i in range(3000):
            store.put(f"key{i:06d}", "v" * 400)
        for i in range(0, 3000, 3):
            store.put(f"key{i:06d}", "w" * 400)
        dev = store.env.device
        assert dev.stats.rand_writes > 0

    def test_lsm_write_amplification_exceeds_mvpbt(self):
        lsm = make_kv_store("lsm", CONFIG,
                            memtable_bytes=4 * 8192)
        mv = make_kv_store("mvpbt", CONFIG)
        for i in range(4000):
            lsm.put(f"key{i:06d}", "v" * 60)
            mv.put(f"key{i:06d}", "v" * 60)
        lsm_written = lsm.env.device.stats.bytes_written
        mv_written = mv.env.device.stats.bytes_written
        assert lsm_written > mv_written   # compaction rewrites vs append-once
