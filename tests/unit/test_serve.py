"""Functional tests for the multi-session serving layer.

Everything here is single-threaded (or trivially threaded through the
SessionExecutor): the layer's *behavioral* contract — session lifecycle,
served results identical to direct Database use, snapshot-exact sliced
scans, group-commit equivalence and durability — must hold without any
real concurrency.  The interleaving-under-contention properties live in
``test_serve_stress.py`` / ``test_serve_fairness.py``."""

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (ConcurrencyError, ConfigError, SessionError,
                          TransactionStateError)
from repro.serve import ServeConfig, SessionExecutor


def make_db(durability: bool = True, **kwargs) -> Database:
    db = Database(EngineConfig(durability=durability, **kwargs))
    db.create_table("t", [("k", "int"), ("v", "str")])
    db.create_index("ix", "t", ["k"], kind="mvpbt",
                    index_only_visibility=True)
    return db


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.group_commit is True

    @pytest.mark.parametrize("kwargs", [
        {"max_sessions": 0},
        {"scan_slice_rows": 0},
        {"group_size_target": -1},
        {"group_window_s": -0.5},
    ])
    def test_bad_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            ServeConfig(**kwargs)


class TestSessionLifecycle:
    def test_begin_commit_roundtrip(self):
        db = make_db()
        with db.serve() as server:
            with server.session() as s:
                txid = s.begin()
                assert txid >= 1 and s.in_txn
                s.insert("t", (1, "a"))
                latency = s.commit()
                assert latency >= 0.0 and not s.in_txn
                assert s.commits == 1

    def test_nested_begin_raises(self):
        db = make_db()
        with db.serve() as server, server.session() as s:
            s.begin()
            with pytest.raises(SessionError, match="still open"):
                s.begin()

    def test_op_without_txn_raises(self):
        db = make_db()
        with db.serve() as server, server.session() as s:
            with pytest.raises(TransactionStateError, match="no open"):
                s.insert("t", (1, "a"))

    def test_closed_session_raises(self):
        db = make_db()
        with db.serve() as server:
            s = server.session()
            s.close()
            with pytest.raises(SessionError, match="closed"):
                s.begin()

    def test_close_aborts_open_txn(self):
        db = make_db()
        with db.serve() as server:
            with server.session() as s:
                s.begin()
                s.insert("t", (1, "a"))
            # context exit closed the session -> abort
            with server.session() as reader:
                reader.begin()
                assert reader.select("ix", (1,)) == []
        # the writer's implicit abort plus the reader's (its txn was
        # still open when its context closed)
        assert db.txn.aborted_count == 2

    def test_session_cap(self):
        db = make_db()
        with db.serve(ServeConfig(max_sessions=2)) as server:
            a, b = server.session(), server.session()
            with pytest.raises(SessionError, match="cap"):
                server.session()
            a.close()
            c = server.session()  # freed slot is reusable
            b.close()
            c.close()

    def test_server_close_is_idempotent_and_refuses_sessions(self):
        db = make_db()
        server = db.serve()
        server.close()
        server.close()
        with pytest.raises(SessionError, match="closed"):
            server.session()
        with pytest.raises(ConcurrencyError):
            server.scheduler.acquire("oltp")

    def test_run_commits_on_success_and_aborts_on_error(self):
        db = make_db()
        with db.serve() as server, server.session() as s:
            s.run(lambda sess: sess.insert("t", (1, "a")))
            with pytest.raises(ValueError):
                s.run(lambda sess: (_ for _ in ()).throw(ValueError("x")))
            s.begin()
            assert s.select("ix", (1,)) == [(1, "a")]
            s.abort()
        assert db.txn.committed_count == 1
        assert db.txn.aborted_count == 2  # run()'s abort + the explicit one


class TestServedEquivalence:
    """A served single session answers exactly like direct Database use."""

    def test_dml_and_reads_match_direct_use(self):
        direct = make_db()
        txn = direct.begin()
        for i in range(20):
            direct.insert(txn, "t", (i, f"v{i}"))
        direct.update_by_key(txn, "ix", (3,), {"v": "v3u"})
        direct.delete_by_key(txn, "ix", (7,))
        txn.commit()
        reader = direct.begin()
        want_all = direct.range_select(reader, "ix", None, None)
        want_point = direct.select(reader, "ix", (3,))
        reader.abort()

        served = make_db()
        with served.serve() as server, server.session() as s:
            s.begin()
            for i in range(20):
                s.insert("t", (i, f"v{i}"))
            s.update_by_key("ix", (3,), {"v": "v3u"})
            s.delete_by_key("ix", (7,))
            s.commit()
            s.begin()
            assert s.range_select("ix", None, None) == want_all
            assert s.select("ix", (3,)) == want_point
            assert s.select_hits("ix", (3,))[0].row == want_point[0]
            assert s.count_range("ix", None, None) == len(want_all)
            s.abort()

    def test_single_session_group_commit_appends_like_direct(self):
        """Group commit with one session = one append per commit, same as
        the direct hook path (byte-level equivalence is pinned by the obs
        golden-trace suite; this pins the append/fsync count)."""
        db = make_db()
        with db.serve() as server, server.session() as s:
            for i in range(3):
                s.begin()
                s.insert("t", (i, "x"))
                s.commit()
        assert db.durability.wal.appends == 3
        assert server.committer.stats.as_dict()["mean_group_size"] == 1.0


class TestBatchScan:
    def test_slices_concatenate_to_monolithic_scan(self):
        db = make_db()
        with db.serve(ServeConfig(scan_slice_rows=7)) as server:
            with server.session() as s:
                s.begin()
                for i in range(100):
                    s.insert("t", (i, f"v{i}"))
                s.commit()
                s.begin()
                want = s.range_select("ix", (10,), (90,))
                got = list(s.batch_scan("ix", (10,), (90,)))
                assert got == want and len(got) == 81
                # many slices actually happened
                assert server.scheduler.stats()["scan"]["grants"] > 10
                s.abort()

    def test_duplicate_run_larger_than_slice_is_not_split(self):
        db = Database(EngineConfig(durability=True))
        db.create_table("t", [("k", "int"), ("v", "str")])
        db.create_index("ix", "t", ["k"], kind="mvpbt",
                        index_only_visibility=True)  # non-unique
        with db.serve(ServeConfig(scan_slice_rows=3)) as server:
            with server.session() as s:
                s.begin()
                for i in range(10):
                    s.insert("t", (5, f"dup{i}"))   # one key, 10 rows
                for i in range(4):
                    s.insert("t", (9, f"tail{i}"))
                s.commit()
                s.begin()
                rows = list(s.batch_scan("ix", None, None))
                assert len(rows) == 14
                assert [k for k, _v in rows] == [5] * 10 + [9] * 4
                s.abort()

    def test_scan_is_snapshot_exact_across_interleaved_commits(self):
        """Rows committed *between slices* by another session stay
        invisible — the mid-scan snapshot never wavers."""
        db = make_db()
        with db.serve(ServeConfig(scan_slice_rows=5)) as server:
            writer, scanner = server.session(), server.session()
            writer.begin()
            for i in range(0, 40, 2):
                writer.insert("t", (i, "base"))
            writer.commit()

            scanner.begin()
            scan = scanner.batch_scan("ix", None, None)
            seen = [next(scan) for _ in range(8)]  # partway through
            writer.begin()
            for i in range(1, 40, 2):              # interleave odd keys
                writer.insert("t", (i, "mid-scan"))
            writer.commit()
            seen.extend(scan)
            scanner.abort()
            assert [k for k, _v in seen] == list(range(0, 40, 2))

            # a *new* snapshot sees all 40
            scanner.begin()
            assert scanner.count_range("ix", None, None) == 40
            scanner.abort()
            writer.close()
            scanner.close()

    def test_version_oblivious_index_falls_back(self):
        db = Database(EngineConfig(durability=False))
        db.create_table("t", [("k", "int"), ("v", "str")])
        db.create_index("bx", "t", ["k"], kind="btree")
        with db.serve() as server, server.session() as s:
            s.begin()
            for i in range(10):
                s.insert("t", (i, f"v{i}"))
            s.commit()
            s.begin()
            rows = list(s.batch_scan("bx", (2,), (5,)))
            assert [k for k, _v in rows] == [2, 3, 4, 5]
            s.abort()


class TestGroupCommitDurability:
    def test_served_commits_survive_recovery(self):
        db = make_db()
        with db.serve() as server, server.session() as s:
            for i in range(5):
                s.begin()
                s.insert("t", (i, f"v{i}"))
                s.commit()
            s.begin()
            s.insert("t", (99, "lost"))   # never committed
            s.abort()
        recovered = Database.recover(db)
        txn = recovered.begin()
        got = recovered.range_select(txn, "ix", None, None)
        assert got == [(i, f"v{i}") for i in range(5)]
        txn.abort()

    def test_group_commit_disabled_uses_hook_path(self):
        db = make_db()
        with db.serve(ServeConfig(group_commit=False)) as server:
            assert server.committer is None
            with server.session() as s:
                s.begin()
                s.insert("t", (1, "a"))
                s.commit()
        assert db.durability.wal.appends == 1
        assert db.txn.committed_count == 1

    def test_no_durability_means_no_committer(self):
        db = make_db(durability=False)
        with db.serve() as server:
            assert server.committer is None
            with server.session() as s:
                s.begin()
                s.insert("t", (1, "a"))
                s.commit()
        assert db.txn.committed_count == 1


class TestSessionExecutor:
    def test_results_in_submission_order(self):
        db = make_db()
        with db.serve() as server:
            def client_for(i):
                def client(session):
                    session.begin()
                    session.insert("t", (i, f"c{i}"))
                    session.commit()
                    return i
                return client
            results = SessionExecutor(server, workers=4).run(
                [client_for(i) for i in range(12)])
            assert results == list(range(12))
            with server.session() as s:
                s.begin()
                assert s.count_range("ix", None, None) == 12
                s.abort()

    def test_first_error_propagates_after_join(self):
        db = make_db()
        with db.serve() as server:
            def good(session):
                session.begin()
                session.insert("t", (1000, "ok"))
                session.commit()
                return "ok"

            def bad(session):
                raise RuntimeError("client exploded")

            with pytest.raises(RuntimeError, match="exploded"):
                SessionExecutor(server, workers=2).run([good, bad, good])
            assert server.active_sessions == 0  # all sessions closed

    def test_zero_workers_rejected(self):
        db = make_db()
        with db.serve() as server:
            with pytest.raises(ConfigError):
                SessionExecutor(server, workers=0)


class TestServerStats:
    def test_stats_shape(self):
        db = make_db()
        with db.serve() as server, server.session() as s:
            s.begin()
            s.insert("t", (1, "a"))
            s.commit()
            stats = server.stats()
            assert stats["active_sessions"] == 1
            assert stats["scheduler"]["ticks"] > 0
            assert "oltp" in stats["scheduler"]["kinds"]
            assert stats["group_commit"]["commits"] == 1
            assert stats["wal_appends"] == 1

    def test_serve_metrics_exported(self):
        from repro.obs import ObsConfig
        db = Database(EngineConfig(durability=True,
                                   obs=ObsConfig(enabled=True)))
        db.create_table("t", [("k", "int"), ("v", "str")])
        db.create_index("ix", "t", ["k"], kind="mvpbt",
                        index_only_visibility=True)
        with db.serve(ServeConfig(scan_slice_rows=4)) as server:
            with server.session() as s:
                s.begin()
                for i in range(20):
                    s.insert("t", (i, "x"))
                s.commit()
                s.begin()
                list(s.batch_scan("ix", None, None))
                s.abort()
        metrics = db.obs.registry.export()
        assert metrics["counters"]["serve.sessions.opened"] == 1
        assert metrics["counters"]["serve.commit.groups"] == 1
        assert metrics["counters"]["serve.scan.slices"] >= 5
        assert metrics["histograms"]["serve.commit.latency_us"]["count"] == 1
        assert metrics["histograms"]["serve.commit.group_size"]["total"] == 1
