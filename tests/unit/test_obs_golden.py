"""Golden-trace determinism suite.

The simulation is fully deterministic (seeded RNGs, simulated clock), so
identical workloads must produce **byte-identical** metrics and trace
exports — including when one of the runs crosses a crash/recovery cycle.
Any nondeterminism smuggled into the engine (wall-clock reads, iteration
over unordered sets, id reuse) breaks these tests immediately.
"""

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.obs import ObsConfig

pytestmark = pytest.mark.obs


def make_db(durability=False):
    config = EngineConfig(
        buffer_pool_pages=48,
        partition_buffer_bytes=1024,
        durability=durability,
        page_size=512,
        extent_pages=8,
        manifest_slot_pages=6,
        obs=ObsConfig(enabled=True),
    )
    db = Database(config)
    db.create_table("t", [("k", "int"), ("v", "str")], storage="sias")
    db.create_index("ix", "t", ["k"], kind="mvpbt",
                    max_partitions=3, merge_fanout=2)
    return db


def run_workload(db, phase=0):
    """Deterministic mixed workload: inserts, updates, deletes, aborts,
    scans — enough volume to cross evictions and a tiered merge."""
    base = phase * 100
    txn = db.begin()
    for i in range(40):
        db.insert(txn, "t", (base + i, f"v{base + i}"))
    txn.commit()

    txn = db.begin()
    for i in range(0, 20, 2):
        db.update_by_key(txn, "ix", (base + i,), {"v": f"u{base + i}"})
    db.delete_by_key(txn, "ix", (base + 7,))
    txn.commit()

    txn = db.begin()  # aborted work must also trace deterministically
    db.insert(txn, "t", (base + 90, "junk"))
    txn.abort()

    txn = db.begin()
    for i in range(40, 70):
        db.insert(txn, "t", (base + i, f"w{base + i}"))
    txn.commit()

    txn = db.begin()
    db.range_select(txn, "ix", (base,), (base + 70,))
    db.select(txn, "ix", (base + 3,))
    db.explain_scan(txn, "ix", (base,), (base + 70,))
    txn.commit()


def exports(db):
    return db.metrics_snapshot(), db.obs.export_metrics_json(), \
        db.obs.export_trace_jsonl()


class TestGoldenIdentity:
    def test_two_runs_are_byte_identical(self):
        results = []
        for _ in range(2):
            db = make_db()
            run_workload(db)
            results.append(exports(db))
        assert results[0][1] == results[1][1]  # metrics JSON
        assert results[0][2] == results[1][2]  # trace JSONL

    def test_trace_export_nonempty_and_line_structured(self):
        db = make_db()
        run_workload(db)
        lines = db.obs.export_trace_jsonl().splitlines()
        assert len(lines) > 20
        names = {__import__("json").loads(line)["name"] for line in lines}
        assert {"txn.begin", "txn.commit", "txn.abort", "mvpbt.evict",
                "device.io", "query.profile"} <= names

    def test_durable_runs_are_byte_identical(self):
        results = []
        for _ in range(2):
            db = make_db(durability=True)
            run_workload(db)
            results.append(exports(db))
        assert results[0][1] == results[1][1]
        assert results[0][2] == results[1][2]

    def test_identity_across_clean_recovery(self):
        """Crash-free recover() mid-workload changes nothing the second,
        uninterrupted run doesn't also record — the obs stream carries
        across the restart, and its recovery.replay events are themselves
        deterministic."""
        results = []
        for _ in range(2):
            db = make_db(durability=True)
            run_workload(db, phase=0)
            db = Database.recover(db)
            run_workload(db, phase=1)
            results.append(exports(db))
        assert results[0][1] == results[1][1]
        assert results[0][2] == results[1][2]

    def test_recovery_events_present(self):
        db = make_db(durability=True)
        run_workload(db)
        db = Database.recover(db)
        names = [e["name"] for e in db.obs.tracer.events()]
        assert "recovery.replay" in names
        assert db.obs.registry.counter_value("recovery.replays") == 1
        assert db.obs.tracer.open_spans == 0

    def test_recovered_run_differs_from_straight_run(self):
        """Sanity guard on the golden methodology: the recovery cycle DOES
        leave a mark (replay span, extra device reads), so byte-identity
        across recovery is only achieved by recovered-vs-recovered."""
        straight = make_db(durability=True)
        run_workload(straight, phase=0)
        run_workload(straight, phase=1)

        recovered = make_db(durability=True)
        run_workload(recovered, phase=0)
        recovered = Database.recover(recovered)
        run_workload(recovered, phase=1)

        assert (straight.obs.export_trace_jsonl()
                != recovered.obs.export_trace_jsonl())


class TestBatchScanInstruments:
    def test_scan_pipeline_counters_exported_and_deterministic(self):
        """The batched-scan instruments (page decodes, zero-copy bytes,
        per-reason prune counters) are part of the golden metrics stream:
        present after a scanning workload and byte-identical across runs
        and across a recovery cycle."""
        snapshots = []
        for _ in range(2):
            db = make_db(durability=True)
            run_workload(db, phase=0)
            db = Database.recover(db)
            run_workload(db, phase=1)
            snap = db.metrics_snapshot()
            snapshots.append(snap)
        counters = snapshots[0]["counters"]
        assert counters["mvpbt.scan.pages_batch_decoded"] > 0
        assert counters["mvpbt.scan.zero_copy_bytes"] > 0
        for name in ("mvpbt.prune.bloom", "mvpbt.prune.zone_map",
                     "mvpbt.prune.min_ts",
                     "mvpbt.scan.pages_skipped_zone_map",
                     "mvpbt.scan.pages_skipped_min_ts"):
            assert name in counters, name
        assert snapshots[0] == snapshots[1]
