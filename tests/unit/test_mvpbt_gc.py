"""Unit tests for MV-PBT partition garbage collection (§4.6)."""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.tree import MVPBT
from repro.core.gc import GCStats, collect_for_eviction
from repro.core.records import MVPBTRecord, RecordType, ReferenceMode
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.status import CommitLog


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(128)
    pb = PartitionBuffer(1 << 22)
    mgr = TransactionManager(clock)

    def make(name="gc", **opts):
        return MVPBT(name, PageFile(name, device, 8192, 8), pool, pb, mgr,
                     **opts)
    return mgr, make


def grow_chain(mgr, ix, key=(5,), vid=7, updates=10):
    t = mgr.begin()
    ix.insert(t, key, RecordID(0, 0), vid=vid)
    t.commit()
    last = RecordID(0, 0)
    for i in range(updates):
        t = mgr.begin()
        nr = RecordID(0, i + 1)
        ix.update_nonkey(t, key, nr, last, vid=vid)
        last = nr
        t.commit()
    return last


class TestPhase1And2:
    def test_scan_flags_then_insert_purges(self, env):
        mgr, make = env
        ix = make()
        last = grow_chain(mgr, ix, updates=20)
        r = mgr.begin()
        ix.search(r, (5,))
        r.commit()
        assert ix.gc_stats.flagged == 20
        t = mgr.begin()
        ix.insert(t, (6,), RecordID(1, 0), vid=8)
        t.commit()
        assert ix.gc_stats.purged_page_level == 20
        assert ix.record_count() == 2   # newest of key 5 + key 6
        reader = mgr.begin()
        assert [h.rid for h in ix.search(reader, (5,))] == [last]

    def test_pinned_visible_version_never_flagged(self, env):
        """A record some active snapshot can still see is not garbage."""
        mgr, make = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (5,), RecordID(0, 0), vid=7)
        t.commit()
        pin = mgr.begin()                      # sees the initial version
        last = RecordID(0, 0)
        for i in range(10):
            t = mgr.begin()
            nr = RecordID(0, i + 1)
            ix.update_nonkey(t, (5,), nr, last, vid=7)
            last = nr
            t.commit()
        r = mgr.begin()
        ix.search(r, (5,))
        r.commit()
        # interval GC: the 9 transient replacements (created and superseded
        # during `pin`) are flagged; the pinned-visible initial version and
        # the newest replacement are not
        assert ix.gc_stats.flagged == 9
        assert [h.rid for h in ix.search(pin, (5,))] == [RecordID(0, 0)]
        fresh = mgr.begin()
        assert [h.rid for h in ix.search(fresh, (5,))] == [last]

    def test_transient_versions_purged_while_query_active(self, env):
        """The paper's headline HTAP GC case: versions created and
        superseded during a long-running query are collected while the
        query still runs."""
        mgr, make = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (5,), RecordID(0, 0), vid=7)
        t.commit()
        olap = mgr.begin()
        last = RecordID(0, 0)
        for i in range(20):
            t = mgr.begin()
            nr = RecordID(0, i + 1)
            ix.update_nonkey(t, (5,), nr, last, vid=7)
            last = nr
            t.commit()
        r = mgr.begin()
        ix.search(r, (5,))     # phase 1 flags the 19 transient records
        r.commit()
        t = mgr.begin()
        ix.insert(t, (6,), RecordID(1, 0), vid=8)  # phase 2 purges
        t.commit()
        assert ix.gc_stats.purged_page_level >= 15
        # both the old and a fresh snapshot still answer correctly
        assert [h.rid for h in ix.search(olap, (5,))] == [RecordID(0, 0)]
        fresh = mgr.begin()
        assert [h.rid for h in ix.search(fresh, (5,))] == [last]
        olap.commit()

    def test_gc_disabled(self, env):
        mgr, make = env
        ix = make(enable_gc=False)
        grow_chain(mgr, ix, updates=10)
        r = mgr.begin()
        ix.search(r, (5,))
        r.commit()
        assert ix.gc_stats.flagged == 0
        assert ix.record_count() == 11


class TestPhase3:
    def test_eviction_purges_dead_chain_tail(self, env):
        mgr, make = env
        ix = make()
        last = grow_chain(mgr, ix, updates=15)
        part = ix.evict_partition()
        assert part.record_count == 1
        assert ix.gc_stats.purged_eviction == 15
        reader = mgr.begin()
        assert [h.rid for h in ix.search(reader, (5,))] == [last]

    def test_tombstoned_chain_vanishes(self, env):
        mgr, make = env
        ix = make()
        last = grow_chain(mgr, ix, updates=3)
        t = mgr.begin()
        ix.delete(t, (5,), last, vid=7)
        t.commit()
        part = ix.evict_partition()
        assert part is None                     # nothing left to persist
        assert ix.gc_stats.chains_dropped == 1

    def test_key_update_pair_survives_gc(self, env):
        """An anti+replacement pair at the horizon must both survive:
        dropping the replacement would lose the new-key matter."""
        mgr, make = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (7,), RecordID(0, 0), vid=1)
        t.commit()
        t = mgr.begin()
        ix.update_key(t, (7,), (1,), RecordID(0, 1), RecordID(0, 0), vid=1)
        t.commit()
        ix.evict_partition()
        reader = mgr.begin()
        assert [h.rid for h in ix.search(reader, (1,))] == [RecordID(0, 1)]
        assert ix.search(reader, (7,)) == []

    def test_cross_partition_antimatter_patch(self, env):
        """Victims' predecessor pointers are inherited so invalidation still
        reaches records in older partitions (physical mode, phase-3 patch)."""
        mgr, make = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (5,), RecordID(0, 0), vid=7)
        t.commit()
        ix.evict_partition()                   # regular now in old partition
        last = RecordID(0, 0)
        for i in range(5):
            t = mgr.begin()
            nr = RecordID(0, i + 1)
            ix.update_nonkey(t, (5,), nr, last, vid=7)
            last = nr
            t.commit()
        part = ix.evict_partition()            # GC keeps newest replacement
        assert part.record_count == 1
        reader = mgr.begin()
        hits = ix.search(reader, (5,))
        assert [h.rid for h in hits] == [last]  # old regular must NOT surface

    def test_aborted_records_dropped(self, env):
        mgr, make = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (5,), RecordID(0, 0), vid=7)
        t.abort()
        part = ix.evict_partition()
        assert part is None


class TestCollectForEviction:
    """Direct tests of the phase-3 algorithm."""

    def _log(self, committed):
        log = CommitLog()
        for ts in committed:
            log.register(ts)
            log.set_committed(ts)
        return log

    def test_keeps_records_above_cutoff(self):
        log = self._log([1, 2, 3])
        records = [
            MVPBTRecord((5,), 3, 3, RecordType.REPLACEMENT, 1,
                        rid_new=RecordID(0, 3), rid_old=RecordID(0, 2)),
            MVPBTRecord((5,), 2, 2, RecordType.REPLACEMENT, 1,
                        rid_new=RecordID(0, 2), rid_old=RecordID(0, 1)),
            MVPBTRecord((5,), 1, 1, RecordType.REGULAR, 1,
                        rid_new=RecordID(0, 1)),
        ]
        stats = GCStats()
        # an active snapshot whose window lands on ts=2
        snap = Snapshot(owner=99, xmax=3, active=frozenset(), xmin=3)
        out = collect_for_eviction(list(records), [snap], log,
                                   ReferenceMode.PHYSICAL, stats)
        # future keeps ts=3; the snapshot keeps ts=2; ts=1 is the victim
        assert {r.ts for r in out} == {3, 2}

    def test_lone_anti_matter_preserved(self):
        log = self._log([2])
        records = [MVPBTRecord((7,), 2, 2, RecordType.ANTI, 1,
                               rid_old=RecordID(0, 0))]
        stats = GCStats()
        out = collect_for_eviction(list(records), [], log,
                                   ReferenceMode.PHYSICAL, stats)
        assert len(out) == 1   # still needed to kill older partitions

    def test_tombstone_kept_when_chain_rooted_elsewhere(self):
        log = self._log([5])
        records = [MVPBTRecord((7,), 5, 5, RecordType.TOMBSTONE, 1,
                               rid_old=RecordID(0, 3))]
        stats = GCStats()
        out = collect_for_eviction(list(records), [], log,
                                   ReferenceMode.PHYSICAL, stats)
        assert len(out) == 1
        assert stats.chains_dropped == 0
