"""Unit tests for device cost profiles (paper Figure 8)."""

import pytest

from repro.errors import ConfigError
from repro.sim.profiles import (INTEL_DC_P3600, LARGE_BLOCK, SMALL_BLOCK,
                                OpCost)


class TestOpCost:
    def test_small_block_latency_is_inverse_iops(self):
        cost = OpCost(iops_8k=1000.0, iops_64k=100.0)
        assert cost.latency(SMALL_BLOCK) == pytest.approx(1e-3)

    def test_sub_8k_charged_as_one_small_op(self):
        cost = OpCost(iops_8k=1000.0, iops_64k=100.0)
        assert cost.latency(512) == pytest.approx(1e-3)

    def test_large_block_latency(self):
        cost = OpCost(iops_8k=1000.0, iops_64k=100.0)
        assert cost.latency(LARGE_BLOCK) == pytest.approx(1e-2)

    def test_interpolation_between_block_sizes(self):
        cost = OpCost(iops_8k=1000.0, iops_64k=100.0)
        mid = (SMALL_BLOCK + LARGE_BLOCK) // 2
        latency = cost.latency(mid)
        assert 1e-3 < latency < 1e-2

    def test_multi_extent_requests_charged_per_chunk(self):
        cost = OpCost(iops_8k=1000.0, iops_64k=100.0)
        assert cost.latency(2 * LARGE_BLOCK) == pytest.approx(2e-2)

    def test_zero_size_rejected(self):
        cost = OpCost(iops_8k=1000.0, iops_64k=100.0)
        with pytest.raises(ConfigError):
            cost.latency(0)

    def test_latency_monotone_in_size(self):
        cost = OpCost(iops_8k=1000.0, iops_64k=100.0)
        sizes = [512, SMALL_BLOCK, 16 * 1024, 32 * 1024, LARGE_BLOCK,
                 128 * 1024]
        latencies = [cost.latency(s) for s in sizes]
        assert latencies == sorted(latencies)


class TestP3600Profile:
    """The transcription of the paper's Figure 8."""

    def test_figure8_read_iops(self):
        assert INTEL_DC_P3600.seq_read.iops_8k == 122382
        assert INTEL_DC_P3600.rand_read.iops_8k == 112479

    def test_figure8_write_iops(self):
        assert INTEL_DC_P3600.seq_write.iops_8k == 11104
        assert INTEL_DC_P3600.rand_write.iops_8k == 7185

    def test_reads_much_faster_than_writes(self):
        read = INTEL_DC_P3600.latency(SMALL_BLOCK, write=False,
                                      sequential=False)
        write = INTEL_DC_P3600.latency(SMALL_BLOCK, write=True,
                                       sequential=False)
        assert write > 10 * read

    def test_sequential_writes_cheaper_per_byte_than_random(self):
        seq = INTEL_DC_P3600.latency(LARGE_BLOCK, write=True, sequential=True)
        rand_equiv = 8 * INTEL_DC_P3600.latency(SMALL_BLOCK, write=True,
                                                sequential=False)
        assert seq < rand_equiv

    def test_cost_selector(self):
        assert INTEL_DC_P3600.cost(write=False, sequential=True) \
            is INTEL_DC_P3600.seq_read
        assert INTEL_DC_P3600.cost(write=True, sequential=False) \
            is INTEL_DC_P3600.rand_write
