"""Unit tests for the LSM-Tree."""

import random


from repro.buffer.pool import BufferPool
from repro.index.lsm.memtable import MemTable, entry_bytes
from repro.index.lsm.tree import LSMTree
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile


def make_tree(memtable_bytes=4 * 8192, l0_limit=2):
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(64)
    tree = LSMTree("lsm", PageFile("lsm", device, 8192, 8), pool,
                   memtable_bytes=memtable_bytes,
                   l0_component_limit=l0_limit,
                   level_base_bytes=16 * 8192)
    return device, tree


class TestMemTable:
    def test_put_get(self):
        mt = MemTable()
        mt.put(("a",), 1, "v1")
        assert mt.get(("a",)) == (1, "v1")

    def test_replace_in_place(self):
        mt = MemTable()
        mt.put(("a",), 1, "v1")
        mt.put(("a",), 2, "v2")
        assert mt.get(("a",)) == (2, "v2")
        assert len(mt) == 1

    def test_size_accounting_on_replace(self):
        mt = MemTable()
        mt.put(("a",), 1, "short")
        mt.put(("a",), 2, "a much longer value indeed")
        assert mt.bytes_used == entry_bytes(("a",),
                                            "a much longer value indeed")

    def test_scan_from_sorted(self):
        mt = MemTable()
        for k in ("c", "a", "b"):
            mt.put((k,), 1, k)
        assert [k[0] for k, _s, _v in mt.scan_from(("b",))] == ["b", "c"]


class TestLSMBasics:
    def test_put_get_delete(self):
        _d, tree = make_tree()
        tree.put(("k",), "v")
        assert tree.get(("k",)) == "v"
        tree.delete(("k",))
        assert tree.get(("k",)) is None

    def test_flush_creates_component(self):
        _d, tree = make_tree()
        for i in range(2000):
            tree.put((f"key{i:05d}",), "v" * 20)
        assert tree.stats.flushes >= 1
        assert tree.component_count >= 1

    def test_get_prefers_newest(self):
        _d, tree = make_tree()
        tree.put(("k",), "old")
        tree.flush_memtable()
        tree.put(("k",), "new")
        assert tree.get(("k",)) == "new"

    def test_tombstone_shadows_older_value(self):
        _d, tree = make_tree()
        tree.put(("k",), "old")
        tree.flush_memtable()
        tree.delete(("k",))
        tree.flush_memtable()
        assert tree.get(("k",)) is None

    def test_scan_merges_components(self):
        _d, tree = make_tree()
        for i in range(0, 20, 2):
            tree.put((f"k{i:02d}",), f"v{i}")
        tree.flush_memtable()
        for i in range(1, 20, 2):
            tree.put((f"k{i:02d}",), f"v{i}")
        got = [k[0] for k, _v in tree.scan(("k00",), 20)]
        assert got == [f"k{i:02d}" for i in range(20)]

    def test_scan_shadowing(self):
        _d, tree = make_tree()
        tree.put(("a",), "old")
        tree.flush_memtable()
        tree.put(("a",), "new")
        tree.delete(("b",))
        assert tree.scan(("a",), 10) == [(("a",), "new")]

    def test_scan_limit(self):
        _d, tree = make_tree()
        for i in range(100):
            tree.put((f"k{i:03d}",), "v")
        assert len(tree.scan((f"k{0:03d}",), 7)) == 7


class TestCompaction:
    def test_l0_merges_into_l1(self):
        _d, tree = make_tree(memtable_bytes=2 * 8192, l0_limit=2)
        for i in range(4000):
            tree.put((f"key{i:05d}",), "v" * 10)
        assert tree.stats.compactions >= 1
        assert tree.stats.write_amplification > 1.0

    def test_compaction_preserves_data(self):
        _d, tree = make_tree(memtable_bytes=2 * 8192, l0_limit=2)
        rng = random.Random(4)
        oracle = {}
        for _ in range(5000):
            k = f"key{rng.randrange(500):04d}"
            if rng.random() < 0.85:
                v = f"val{rng.randrange(10 ** 6)}"
                tree.put((k,), v)
                oracle[k] = v
            else:
                tree.delete((k,))
                oracle.pop(k, None)
        for k, v in oracle.items():
            assert tree.get((k,)) == v, k
        absent = set(f"key{i:04d}" for i in range(500)) - set(oracle)
        for k in list(absent)[:50]:
            assert tree.get((k,)) is None, k

    def test_tombstones_dropped_at_bottom_level(self):
        _d, tree = make_tree(memtable_bytes=2 * 8192, l0_limit=1)
        for i in range(500):
            tree.put((f"k{i:04d}",), "v" * 30)
        for i in range(500):
            tree.delete((f"k{i:04d}",))
        tree.flush_memtable()
        # after enough compaction rounds the data shrinks
        total_records = sum(s.record_count for s in tree._l0)
        for level in tree._levels:
            if level is not None:
                total_records += level.record_count
        assert total_records < 1000

    def test_compaction_reads_sequentially(self):
        device, tree = make_tree(memtable_bytes=2 * 8192, l0_limit=2)
        for i in range(4000):
            tree.put((f"key{i:05d}",), "v" * 10)
        assert device.stats.seq_reads > 0
