"""Unit tests for the TPC-C workload."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import WorkloadError
from repro.index.base import TOP
from repro.workloads.tpcc import (TPCCConfig, TPCCRunner, customer_last_name)


def small_config(**kw):
    defaults = dict(warehouses=1, districts_per_warehouse=2,
                    customers_per_district=10, items=20,
                    initial_orders_per_district=10)
    defaults.update(kw)
    return TPCCConfig(**defaults)


@pytest.fixture(scope="module")
def loaded():
    db = Database(EngineConfig(buffer_pool_pages=256))
    runner = TPCCRunner(db, small_config(), index_kind="mvpbt")
    runner.load()
    return db, runner


class TestNames:
    def test_last_name_syllables(self):
        assert customer_last_name(0) == "BARBARBAR"
        assert customer_last_name(999) == "EINGEINGEING"
        assert customer_last_name(371) == "PRICALLYOUGHT"


class TestConfig:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            TPCCConfig(new_order_weight=0.9)

    def test_run_requires_load(self):
        db = Database(EngineConfig(buffer_pool_pages=64))
        runner = TPCCRunner(db, small_config())
        with pytest.raises(WorkloadError):
            runner.run(1)


class TestLoad:
    def test_cardinalities(self, loaded):
        db, runner = loaded
        cfg = runner.config
        t = db.begin()
        assert len(db.seq_scan(t, "warehouse")) == cfg.warehouses
        assert len(db.seq_scan(t, "district")) == (
            cfg.warehouses * cfg.districts_per_warehouse)
        assert len(db.seq_scan(t, "customer")) == (
            cfg.warehouses * cfg.districts_per_warehouse
            * cfg.customers_per_district)
        assert len(db.seq_scan(t, "item")) == cfg.items
        assert len(db.seq_scan(t, "stock")) == cfg.warehouses * cfg.items
        t.commit()

    def test_orders_have_lines(self, loaded):
        db, runner = loaded
        t = db.begin()
        orders = db.range_select(t, "idx_orders", (1, 1), (1, 1, TOP))
        assert len(orders) == runner.config.initial_orders_per_district
        o = orders[0]
        lines = db.range_select(t, "idx_order_line", (1, 1, o[2]),
                                (1, 1, o[2], TOP))
        assert len(lines) == o[5]   # o_ol_cnt
        t.commit()


class TestRun:
    def test_transactions_commit(self):
        db = Database(EngineConfig(buffer_pool_pages=256))
        runner = TPCCRunner(db, small_config(seed=3), index_kind="mvpbt")
        runner.load()
        result = runner.run(120)
        assert result.committed > 100
        assert result.tpm > 0
        assert set(result.by_type) <= {"new_order", "payment",
                                       "order_status", "delivery",
                                       "stock_level"}
        assert result.by_type.get("new_order", 0) > 0
        assert result.by_type.get("payment", 0) > 0

    def test_new_order_advances_district_counter(self):
        db = Database(EngineConfig(buffer_pool_pages=256))
        cfg = small_config(new_order_weight=1.0, payment_weight=0.0,
                           order_status_weight=0.0, delivery_weight=0.0,
                           stock_level_weight=0.0)
        runner = TPCCRunner(db, cfg, index_kind="mvpbt")
        runner.load()
        result = runner.run(20)
        t = db.begin()
        districts = db.seq_scan(t, "district")
        total_next = sum(d[4] for d in districts)
        base = (cfg.initial_orders_per_district + 1) * len(districts)
        committed_orders = result.by_type.get("new_order", 0)
        # aborted NewOrders roll their district counter back
        assert total_next == base + committed_orders
        t.commit()

    def test_payment_updates_ytd_consistently(self):
        db = Database(EngineConfig(buffer_pool_pages=256))
        cfg = small_config(new_order_weight=0.0, payment_weight=1.0,
                           order_status_weight=0.0, delivery_weight=0.0,
                           stock_level_weight=0.0)
        runner = TPCCRunner(db, cfg, index_kind="mvpbt")
        runner.load()
        runner.run(30)
        t = db.begin()
        w_ytd = sum(w[2] for w in db.seq_scan(t, "warehouse"))
        d_ytd = sum(d[3] for d in db.seq_scan(t, "district"))
        h_sum = sum(h[3] for h in db.seq_scan(t, "history"))
        wh_base = 300000.0 * cfg.warehouses
        d_base = 30000.0 * cfg.warehouses * cfg.districts_per_warehouse
        assert w_ytd - wh_base == pytest.approx(h_sum)
        assert d_ytd - d_base == pytest.approx(h_sum)
        t.commit()

    def test_delivery_clears_new_orders(self):
        db = Database(EngineConfig(buffer_pool_pages=256))
        cfg = small_config(new_order_weight=0.0, payment_weight=0.0,
                           order_status_weight=0.0, delivery_weight=1.0,
                           stock_level_weight=0.0,
                           initial_orders_per_district=6)
        runner = TPCCRunner(db, cfg, index_kind="mvpbt")
        runner.load()
        t = db.begin()
        before = len(db.seq_scan(t, "new_order"))
        t.commit()
        assert before > 0
        runner.run(before * cfg.districts_per_warehouse + 10)
        t2 = db.begin()
        after = len(db.seq_scan(t2, "new_order"))
        t2.commit()
        assert after == 0

    def test_runs_on_every_index_kind(self):
        for kind in ("btree", "pbt", "mvpbt"):
            db = Database(EngineConfig(buffer_pool_pages=256))
            runner = TPCCRunner(db, small_config(), index_kind=kind)
            runner.load()
            result = runner.run(60)
            assert result.committed > 40, kind
