"""Unit tests for buffer replacement policies."""

import pytest

from repro.buffer.policy import ClockPolicy, LRUPolicy
from repro.errors import BufferError_


class TestLRU:
    def test_evicts_least_recent(self):
        lru = LRUPolicy()
        for k in "abc":
            lru.admit(k)
        assert lru.evict() == "a"

    def test_touch_refreshes(self):
        lru = LRUPolicy()
        for k in "abc":
            lru.admit(k)
        lru.touch("a")
        assert lru.evict() == "b"

    def test_remove(self):
        lru = LRUPolicy()
        lru.admit("a")
        lru.admit("b")
        lru.remove("a")
        assert lru.evict() == "b"
        assert len(lru) == 0

    def test_evict_empty_raises(self):
        with pytest.raises(BufferError_):
            LRUPolicy().evict()


class TestClock:
    def test_second_chance(self):
        clock = ClockPolicy()
        for k in "abc":
            clock.admit(k)
        # all referenced: first pass clears bits, "a" evicted on second pass
        assert clock.evict() == "a"

    def test_touched_frame_survives_one_round(self):
        clock = ClockPolicy()
        for k in "ab":
            clock.admit(k)
        clock.evict()          # clears+rotates, evicts "a"
        clock.admit("c")
        clock.touch("b")
        evicted = clock.evict()
        assert evicted in ("b", "c")  # one of them goes
        assert len(clock) == 1

    def test_evict_empty_raises(self):
        with pytest.raises(BufferError_):
            ClockPolicy().evict()

    def test_remove_unknown_is_noop(self):
        clock = ClockPolicy()
        clock.remove("zzz")
        assert len(clock) == 0
