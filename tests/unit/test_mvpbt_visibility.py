"""Unit tests for the index-only visibility check (Algorithm 3)."""


from repro.core.records import MVPBTRecord, RecordType, ReferenceMode
from repro.core.visibility import Visibility, VisibilityChecker
from repro.storage.recordid import RecordID
from repro.txn.snapshot import Snapshot
from repro.txn.status import CommitLog


def make_log(committed=(), aborted=()):
    log = CommitLog()
    for ts in committed:
        log.register(ts)
        log.set_committed(ts)
    for ts in aborted:
        log.register(ts)
        log.set_aborted(ts)
    return log


def snap(owner=100, xmax=100, active=(), xmin=None):
    return Snapshot(owner=owner, xmax=xmax, active=frozenset(active),
                    xmin=xmin if xmin is not None else xmax)


def checker(snapshot, log, mode=ReferenceMode.PHYSICAL, cutoff=None):
    return VisibilityChecker(snapshot, log, mode, cutoff=cutoff)


V0, V1, V2, V3 = (RecordID(0, i) for i in range(4))


def regular(ts, seq=None, key=(7,), vid=1, rid=V0):
    return MVPBTRecord(key, ts, seq if seq is not None else ts,
                       RecordType.REGULAR, vid, rid_new=rid)


def replacement(ts, rid_new, rid_old, seq=None, key=(7,), vid=1):
    return MVPBTRecord(key, ts, seq if seq is not None else ts,
                       RecordType.REPLACEMENT, vid,
                       rid_new=rid_new, rid_old=rid_old)


def anti(ts, rid_old, seq=None, key=(7,), vid=1):
    return MVPBTRecord(key, ts, seq if seq is not None else ts,
                       RecordType.ANTI, vid, rid_old=rid_old)


def tombstone(ts, rid_old, seq=None, key=(7,), vid=1):
    return MVPBTRecord(key, ts, seq if seq is not None else ts,
                       RecordType.TOMBSTONE, vid, rid_old=rid_old)


class TestBasicRules:
    def test_committed_regular_visible(self):
        ck = checker(snap(), make_log(committed=[1]))
        assert ck.check(regular(1)) is Visibility.VISIBLE

    def test_uncommitted_invisible(self):
        ck = checker(snap(), make_log())
        assert ck.check(regular(1)) is Visibility.INVISIBLE

    def test_aborted_invisible(self):
        ck = checker(snap(), make_log(aborted=[1]))
        assert ck.check(regular(1)) is Visibility.INVISIBLE

    def test_newer_than_snapshot_invisible(self):
        ck = checker(snap(xmax=5), make_log(committed=[7]))
        assert ck.check(regular(7)) is Visibility.INVISIBLE

    def test_concurrent_invisible(self):
        ck = checker(snap(xmax=10, active=[4]), make_log(committed=[4]))
        assert ck.check(regular(4)) is Visibility.INVISIBLE

    def test_own_writes_visible(self):
        ck = checker(snap(owner=9, xmax=9), make_log())
        assert ck.check(regular(9)) is Visibility.VISIBLE

    def test_gc_flagged_invisible(self):
        ck = checker(snap(), make_log(committed=[1]))
        r = regular(1)
        r.mark_gc()
        assert ck.check(r) is Visibility.INVISIBLE

    def test_pure_antimatter_never_returned(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log)
        assert ck.check(anti(2, V0)) is Visibility.INVISIBLE
        assert ck.check(tombstone(2, V0)) is Visibility.INVISIBLE


class TestAntiMatterChains:
    def test_replacement_supersedes_regular(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log)
        assert ck.check(replacement(2, V1, V0)) is Visibility.VISIBLE
        assert ck.check(regular(1, rid=V0)) is Visibility.INVISIBLE

    def test_old_snapshot_sees_old_record(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(xmax=2), log)   # snapshot before ts=2
        assert ck.check(replacement(2, V1, V0)) is Visibility.INVISIBLE
        assert ck.check(regular(1, rid=V0)) is Visibility.VISIBLE

    def test_uncommitted_replacement_does_not_invalidate(self):
        log = make_log(committed=[1])
        ck = checker(snap(), log)
        assert ck.check(replacement(2, V1, V0)) is Visibility.INVISIBLE
        assert ck.check(regular(1, rid=V0)) is Visibility.VISIBLE

    def test_tombstone_cascades_through_whole_chain(self):
        """The DESIGN.md §6 deviation: anti-matter of superseded records
        still registers, so a tombstone kills records many hops down."""
        log = make_log(committed=[1, 2, 3, 4])
        ck = checker(snap(), log)
        assert ck.check(tombstone(4, V2)) is Visibility.INVISIBLE
        assert ck.check(replacement(3, V2, V1)) is Visibility.INVISIBLE
        assert ck.check(replacement(2, V1, V0)) is Visibility.INVISIBLE
        assert ck.check(regular(1, rid=V0)) is Visibility.INVISIBLE

    def test_anti_record_kills_old_key_record(self):
        """Key update: anti at old key, replacement at new key."""
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log)
        # scan at the old key position processes the anti first
        assert ck.check(anti(2, V0, key=(7,))) is Visibility.INVISIBLE
        assert ck.check(regular(1, key=(7,), rid=V0)) is Visibility.INVISIBLE

    def test_logical_mode_kills_by_vid(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log, mode=ReferenceMode.LOGICAL)
        # blind replacement without rid_old still supersedes via the VID
        repl = MVPBTRecord((7,), 2, 2, RecordType.REPLACEMENT, vid=9,
                           rid_new=V1, rid_old=None)
        assert ck.check(repl) is Visibility.VISIBLE
        assert ck.check(regular(1, vid=9, rid=V0)) is Visibility.INVISIBLE

    def test_physical_mode_distinct_tuples_unaffected(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log)
        assert ck.check(replacement(2, V1, V0, vid=1)) is Visibility.VISIBLE
        other = MVPBTRecord((7,), 1, 0, RecordType.REGULAR, vid=2, rid_new=V3)
        assert ck.check(other) is Visibility.VISIBLE

    def test_same_ts_ordering_by_seq(self):
        """One transaction updating twice: the later statement wins."""
        log = make_log(committed=[5])
        ck = checker(snap(), log)
        assert ck.check(replacement(5, V2, V1, seq=11)) is Visibility.VISIBLE
        assert ck.check(replacement(5, V1, V0, seq=10)) is Visibility.INVISIBLE


class TestGarbageClassification:
    def test_superseded_below_cutoff_is_garbage(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log, cutoff=50)
        ck.check(replacement(2, V1, V0))
        assert ck.check(regular(1, rid=V0)) is Visibility.GARBAGE

    def test_not_garbage_without_cutoff(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log, cutoff=None)
        ck.check(replacement(2, V1, V0))
        assert ck.check(regular(1, rid=V0)) is Visibility.INVISIBLE

    def test_not_garbage_when_anti_above_cutoff(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(), log, cutoff=2)   # ts=2 not below cutoff
        ck.check(replacement(2, V1, V0))
        assert ck.check(regular(1, rid=V0)) is Visibility.INVISIBLE


class TestSetRecords:
    def test_visible_entries_filtered_by_snapshot(self):
        log = make_log(committed=[1, 2])
        ck = checker(snap(xmax=2), log)
        record = MVPBTRecord((7,), 2, 2, RecordType.REGULAR_SET, -1,
                             set_entries=[(2, V1, 2, 2), (1, V0, 1, 1)])
        visible = ck.visible_set_entries(record)
        assert [(vid, rid) for vid, rid, _ts, _seq in visible] == [(1, V0)]

    def test_entries_killed_by_antimatter(self):
        log = make_log(committed=[1, 2, 3])
        ck = checker(snap(), log)
        ck.check(tombstone(3, V0, vid=1))
        record = MVPBTRecord((7,), 1, 1, RecordType.REGULAR_SET, -1,
                             set_entries=[(1, V0, 1, 1), (2, V1, 2, 2)])
        visible = ck.visible_set_entries(record)
        assert [(vid, rid) for vid, rid, _ts, _seq in visible] == [(2, V1)]

    def test_gc_flagged_set_returns_nothing(self):
        log = make_log(committed=[1])
        ck = checker(snap(), log)
        record = MVPBTRecord((7,), 1, 1, RecordType.REGULAR_SET, -1,
                             set_entries=[(1, V0, 1, 1)])
        record.mark_gc()
        assert ck.visible_set_entries(record) == []
