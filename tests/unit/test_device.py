"""Unit tests for the simulated device."""

import pytest

from repro.errors import DeviceError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600, UNIT_TEST_PROFILE


@pytest.fixture
def dev():
    return SimulatedDevice(INTEL_DC_P3600, SimClock())


class TestAllocation:
    def test_allocations_are_monotonic(self, dev):
        a = dev.allocate(4096)
        b = dev.allocate(4096)
        assert b == a + 4096

    def test_zero_allocation_rejected(self, dev):
        with pytest.raises(DeviceError):
            dev.allocate(0)

    def test_capacity_enforced(self):
        dev = SimulatedDevice(UNIT_TEST_PROFILE, SimClock())
        dev.allocate(UNIT_TEST_PROFILE.capacity_bytes)
        with pytest.raises(DeviceError):
            dev.allocate(1)

    def test_allocated_bytes_tracked(self, dev):
        dev.allocate(1000)
        dev.allocate(2000)
        assert dev.allocated_bytes == 3000


class TestIOAccounting:
    def test_read_advances_clock(self, dev):
        offset = dev.allocate(8192)
        before = dev.clock.now
        latency = dev.read(offset, 8192)
        assert dev.clock.now == pytest.approx(before + latency)

    def test_first_access_is_random(self, dev):
        offset = dev.allocate(8192)
        dev.read(offset, 8192)
        assert dev.stats.rand_reads == 1
        assert dev.stats.seq_reads == 0

    def test_adjacent_access_is_sequential(self, dev):
        offset = dev.allocate(16384)
        dev.read(offset, 8192)
        dev.read(offset + 8192, 8192)
        assert dev.stats.seq_reads == 1

    def test_non_adjacent_access_is_random(self, dev):
        offset = dev.allocate(32768)
        dev.read(offset, 8192)
        dev.read(offset + 16384, 8192)
        assert dev.stats.rand_reads == 2

    def test_read_and_write_streams_tracked_separately(self, dev):
        offset = dev.allocate(32768)
        dev.write(offset, 8192)
        dev.read(offset + 8192, 8192)     # random (first read)
        dev.write(offset + 8192, 8192)    # sequential write continuation
        assert dev.stats.seq_writes == 1
        assert dev.stats.rand_writes == 1
        assert dev.stats.rand_reads == 1

    def test_bytes_counted(self, dev):
        offset = dev.allocate(65536)
        dev.write(offset, 65536)
        dev.read(offset, 8192)
        assert dev.stats.bytes_written == 65536
        assert dev.stats.bytes_read == 8192

    def test_out_of_bounds_io_rejected(self, dev):
        with pytest.raises(DeviceError):
            dev.read(INTEL_DC_P3600.capacity_bytes, 8192)

    def test_sequential_write_faster_than_random(self, dev):
        offset = dev.allocate(3 * 65536)
        dev.write(offset, 65536)
        seq_latency = dev.write(offset + 65536, 65536)        # sequential
        rand_latency = dev.write(offset, 65536)               # jump back
        assert seq_latency < rand_latency

    def test_stats_delta(self, dev):
        offset = dev.allocate(16384)
        dev.read(offset, 8192)
        snap = dev.stats.snapshot()
        dev.read(offset + 8192, 8192)
        delta = dev.stats.delta(snap)
        assert delta.reads == 1
        assert delta.bytes_read == 8192


class TestTraceReconciliation:
    """The I/O trace and the stats counters observe the same request stream."""

    def _mixed_workload(self, dev):
        a = dev.allocate(16 * 8192)
        b = dev.allocate(16 * 8192)
        dev.write(a, 8192)
        dev.write(a + 8192, 8192)            # sequential continuation
        dev.write(b, 4 * 8192)               # random jump, extent-sized
        dev.read(a, 8192)
        dev.read(a + 8192, 512)              # sub-page sequential read
        dev.read(b + 8 * 8192, 2 * 8192)     # random read
        dev.write(a + 2 * 8192, 512)         # random small write

    def test_entry_counts_match_stats(self, dev):
        dev.trace.enable()
        self._mixed_workload(dev)
        assert len(dev.trace.entries("R")) == dev.stats.reads
        assert len(dev.trace.entries("W")) == dev.stats.writes
        assert len(dev.trace.entries()) == dev.stats.reads + dev.stats.writes

    def test_traced_bytes_match_stats(self, dev):
        dev.trace.enable()
        self._mixed_workload(dev)
        traced_read = sum(e.sectors for e in dev.trace.entries("R")) * 512
        traced_written = sum(e.sectors for e in dev.trace.entries("W")) * 512
        assert traced_read == dev.stats.bytes_read
        assert traced_written == dev.stats.bytes_written

    def test_trace_lbas_are_sector_addresses(self, dev):
        dev.trace.enable()
        offset = dev.allocate(8192)
        dev.write(offset, 8192)
        (entry,) = dev.trace.entries("W")
        assert entry.lba == offset // 512
        assert entry.sectors == 16

    def test_disabled_trace_records_nothing_but_stats_still_count(self, dev):
        self._mixed_workload(dev)
        assert len(dev.trace) == 0
        assert dev.stats.reads == 3
        assert dev.stats.writes == 4

    def test_trace_clear_does_not_reset_stats(self, dev):
        dev.trace.enable()
        self._mixed_workload(dev)
        dev.trace.clear()
        assert len(dev.trace) == 0
        assert dev.stats.reads == 3
