"""Unit tests for the paged B⁺-Tree."""

import random

import pytest

from repro.buffer.pool import BufferPool
from repro.index.btree.tree import BPlusTree
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID


@pytest.fixture
def tree():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    pool = BufferPool(256)
    return BPlusTree("bt", PageFile("bt", device, 8192, 8), pool)


class TestInsertSearch:
    def test_single_entry(self, tree):
        tree.insert_entry((5,), RecordID(0, 1))
        assert tree.search((5,)) == [RecordID(0, 1)]

    def test_missing_key(self, tree):
        tree.insert_entry((5,), RecordID(0, 1))
        assert tree.search((6,)) == []

    def test_many_random_inserts(self, tree):
        rng = random.Random(3)
        keys = list(range(5000))
        rng.shuffle(keys)
        for k in keys:
            tree.insert_entry((k,), RecordID(0, k % 1000))
        assert tree.height >= 2
        for k in (0, 4999, 2500, 1234):
            assert tree.search((k,)) == [RecordID(0, k % 1000)]
        assert tree.entry_count() == 5000

    def test_duplicate_keys_all_returned(self, tree):
        for i in range(5):
            tree.insert_entry((7,), RecordID(1, i))
        assert len(tree.search((7,))) == 5

    def test_duplicates_across_leaf_boundary(self, tree):
        for i in range(600):
            tree.insert_entry((7,), RecordID(1, i))
        assert len(tree.search((7,))) == 600

    def test_composite_keys(self, tree):
        tree.insert_entry((1, "a"), RecordID(0, 0))
        tree.insert_entry((1, "b"), RecordID(0, 1))
        assert tree.search((1, "a")) == [RecordID(0, 0)]


class TestRangeScan:
    def test_scan_range(self, tree):
        for k in range(100):
            tree.insert_entry((k,), RecordID(0, k))
        got = [k[0] for k, _r in tree.range_scan((10,), (20,))]
        assert got == list(range(10, 21))

    def test_scan_exclusive(self, tree):
        for k in range(30):
            tree.insert_entry((k,), RecordID(0, k))
        got = [k[0] for k, _r in tree.range_scan((10,), (20,),
                                                 lo_incl=False,
                                                 hi_incl=False)]
        assert got == list(range(11, 20))

    def test_full_scan_sorted(self, tree):
        rng = random.Random(1)
        keys = list(range(2000))
        rng.shuffle(keys)
        for k in keys:
            tree.insert_entry((k,), RecordID(0, 0))
        got = [k[0] for k, _r in tree.range_scan(None, None)]
        assert got == sorted(got)
        assert len(got) == 2000


class TestRemoveUpsert:
    def test_remove_entry(self, tree):
        tree.insert_entry((5,), RecordID(0, 1))
        tree.insert_entry((5,), RecordID(0, 2))
        assert tree.remove_entry((5,), RecordID(0, 1))
        assert tree.search((5,)) == [RecordID(0, 2)]

    def test_remove_missing_returns_false(self, tree):
        assert not tree.remove_entry((5,), RecordID(0, 1))

    def test_remove_across_leaf_boundary(self, tree):
        for i in range(600):
            tree.insert_entry((7,), RecordID(1, i))
        assert tree.remove_entry((7,), RecordID(1, 599))
        assert len(tree.search((7,))) == 599

    def test_upsert_replaces_in_place(self, tree):
        assert not tree.upsert(("k",), "v1")
        assert tree.upsert(("k",), "v2")
        assert tree.get(("k",)) == "v2"
        assert tree.entry_count() == 1

    def test_get_missing_returns_none(self, tree):
        assert tree.get(("nope",)) is None


class TestIOBehaviour:
    def test_writes_are_random_page_writes(self):
        clock = SimClock()
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        pool = BufferPool(8)   # tiny pool forces evictions of dirty pages
        tree = BPlusTree("bt", PageFile("bt", device, 8192, 8), pool)
        rng = random.Random(3)
        keys = list(range(4000))
        rng.shuffle(keys)
        for k in keys:
            tree.insert_entry((k,), RecordID(0, 0))
        # in-place updated nodes come back as random writes
        assert device.stats.rand_writes > 0

    def test_oracle_consistency_random_ops(self, tree):
        rng = random.Random(9)
        oracle: dict[int, list] = {}
        for _ in range(3000):
            k = rng.randrange(300)
            if rng.random() < 0.7:
                rid = RecordID(1, rng.randrange(1000))
                tree.insert_entry((k,), rid)
                oracle.setdefault(k, []).append(rid)
            elif oracle.get(k):
                rid = oracle[k].pop()
                assert tree.remove_entry((k,), rid)
        for k, rids in oracle.items():
            assert sorted(tree.search((k,))) == sorted(rids), k
