"""Unit tests for MV-PBT tree operations (§4.2)."""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.tree import MVPBT
from repro.errors import UniqueViolationError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(128)
    pb = PartitionBuffer(1 << 22)
    mgr = TransactionManager(clock)

    def make(name="ix", **opts):
        return MVPBT(name, PageFile(name, device, 8192, 8), pool, pb, mgr,
                     **opts)
    return mgr, make, device


V = [RecordID(0, i) for i in range(10)]


class TestFigure10Scenario:
    """The paper's running example: insert, non-key update, key update,
    delete — each observed from the snapshots that should(n't) see them."""

    def test_full_lifecycle(self, env):
        mgr, make, _d = env
        ix = make()
        tx0 = mgr.begin()
        ix.insert(tx0, (7,), V[0], vid=1)
        tx0.commit()
        txr = mgr.begin()                      # long-running reader

        tx1 = mgr.begin()
        ix.update_nonkey(tx1, (7,), V[1], V[0], vid=1)
        tx1.commit()
        tx2 = mgr.begin()
        ix.update_key(tx2, (7,), (1,), V[2], V[1], vid=1)
        tx2.commit()
        tx3 = mgr.begin()
        ix.delete(tx3, (1,), V[2], vid=1)
        tx3.commit()

        assert [h.rid for h in ix.search(txr, (7,))] == [V[0]]
        assert ix.search(txr, (1,)) == []
        assert [h.rid for h in ix.range_scan(txr, (0,), (10,))] == [V[0]]

        fresh = mgr.begin()
        assert ix.search(fresh, (7,)) == []
        assert ix.search(fresh, (1,)) == []
        assert ix.range_scan(fresh, None, None) == []

    def test_record_type_counters(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (7,), V[0], vid=1)
        ix.update_nonkey(t, (7,), V[1], V[0], vid=1)
        ix.update_key(t, (7,), (1,), V[2], V[1], vid=1)
        ix.delete(t, (1,), V[2], vid=1)
        t.commit()
        assert ix.stats.inserts == 1
        assert ix.stats.replacements == 2     # non-key + key update
        assert ix.stats.anti_records == 1
        assert ix.stats.tombstones == 1


class TestSearch:
    def test_intermediate_snapshots(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (7,), V[0], vid=1)
        t.commit()
        s1 = mgr.begin()
        t = mgr.begin()
        ix.update_nonkey(t, (7,), V[1], V[0], vid=1)
        t.commit()
        s2 = mgr.begin()
        t = mgr.begin()
        ix.update_nonkey(t, (7,), V[2], V[1], vid=1)
        t.commit()
        s3 = mgr.begin()
        assert [h.rid for h in ix.search(s1, (7,))] == [V[0]]
        assert [h.rid for h in ix.search(s2, (7,))] == [V[1]]
        assert [h.rid for h in ix.search(s3, (7,))] == [V[2]]

    def test_non_unique_returns_all_visible_tuples(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        for i in range(5):
            ix.insert(t, (7,), V[i], vid=i + 1)
        t.commit()
        reader = mgr.begin()
        assert len(ix.search(reader, (7,))) == 5

    def test_uncommitted_changes_visible_to_self_only(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (7,), V[0], vid=1)
        other = mgr.begin()
        assert [h.rid for h in ix.search(t, (7,))] == [V[0]]
        assert ix.search(other, (7,)) == []

    def test_aborted_insert_invisible(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (7,), V[0], vid=1)
        t.abort()
        reader = mgr.begin()
        assert ix.search(reader, (7,)) == []


class TestUniqueIndex:
    def test_duplicate_insert_rejected(self, env):
        mgr, make, _d = env
        ix = make(unique=True)
        t = mgr.begin()
        ix.insert(t, (1,), V[0], vid=1)
        with pytest.raises(UniqueViolationError):
            ix.insert(t, (1,), V[1], vid=2)

    def test_key_update_into_occupied_slot_rejected(self, env):
        mgr, make, _d = env
        ix = make(unique=True)
        t = mgr.begin()
        ix.insert(t, (1,), V[0], vid=1)
        ix.insert(t, (2,), V[1], vid=2)
        t.commit()
        t2 = mgr.begin()
        with pytest.raises(UniqueViolationError):
            ix.update_key(t2, (1,), (2,), V[2], V[0], vid=1)

    def test_reinsert_after_delete_allowed(self, env):
        mgr, make, _d = env
        ix = make(unique=True)
        t = mgr.begin()
        ix.insert(t, (1,), V[0], vid=1)
        t.commit()
        t2 = mgr.begin()
        ix.delete(t2, (1,), V[0], vid=1)
        t2.commit()
        t3 = mgr.begin()
        ix.insert(t3, (1,), V[1], vid=2)   # must not raise
        t3.commit()
        reader = mgr.begin()
        assert [h.rid for h in ix.search(reader, (1,))] == [V[1]]


class TestScanLimit:
    def test_limit_respected_and_sorted(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        for i in range(100):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        reader = mgr.begin()
        hits = ix.scan_limit(reader, (10,), 5)
        assert [h.key[0] for h in hits] == [10, 11, 12, 13, 14]

    def test_limit_across_partitions(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        for i in range(0, 50, 2):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()
        t = mgr.begin()
        for i in range(1, 50, 2):
            ix.insert(t, (i,), RecordID(2, i), vid=100 + i)
        t.commit()
        reader = mgr.begin()
        hits = ix.scan_limit(reader, (0,), 10)
        assert [h.key[0] for h in hits] == list(range(10))

    def test_limit_sees_only_visible(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        for i in range(10):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        t2 = mgr.begin()
        ix.delete(t2, (3,), RecordID(1, 3), vid=4)
        t2.commit()
        reader = mgr.begin()
        hits = ix.scan_limit(reader, (0,), 5)
        assert [h.key[0] for h in hits] == [0, 1, 2, 4, 5]

    def test_updated_key_returns_newest_version(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        for i in range(10):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()
        t2 = mgr.begin()
        ix.update_nonkey(t2, (5,), RecordID(2, 5), RecordID(1, 5), vid=6)
        t2.commit()
        reader = mgr.begin()
        hits = ix.scan_limit(reader, (5,), 1)
        assert hits[0].rid == RecordID(2, 5)


class TestAblationMode:
    def test_candidates_include_all_versions(self, env):
        mgr, make, _d = env
        ix = make(index_only_visibility=False, enable_gc=False)
        t = mgr.begin()
        ix.insert(t, (7,), V[0], vid=1)
        t.commit()
        t2 = mgr.begin()
        ix.update_nonkey(t2, (7,), V[1], V[0], vid=1)
        t2.commit()
        reader = mgr.begin()
        # version-oblivious: both versions' records are candidates
        assert {h.rid for h in ix.search(reader, (7,))} == {V[0], V[1]}

    def test_range_candidates(self, env):
        mgr, make, _d = env
        ix = make(index_only_visibility=False, enable_gc=False)
        t = mgr.begin()
        ix.insert(t, (1,), V[0], vid=1)
        ix.insert(t, (2,), V[1], vid=2)
        ix.delete(t, (2,), V[1], vid=2)
        t.commit()
        reader = mgr.begin()
        # tombstone has no matter: candidates are the two inserts
        assert {h.rid for h in ix.range_scan(reader, None, None)} == {V[0], V[1]}


class TestPartitionFilters:
    def test_min_ts_filter_skips_new_partitions(self, env):
        mgr, make, _d = env
        ix = make()
        old_reader = mgr.begin()
        t = mgr.begin()
        for i in range(50):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()
        ix.search(old_reader, (25,))
        assert ix.stats.partitions_skipped_mints >= 1

    def test_range_key_filter(self, env):
        mgr, make, _d = env
        ix = make(use_bloom=False)
        t = mgr.begin()
        for i in range(50):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()
        reader = mgr.begin()
        ix.search(reader, (500,))
        assert ix.stats.partitions_skipped_range >= 1

    def test_bloom_filter_skips(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        for i in range(50):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()
        reader = mgr.begin()
        ix.search(reader, (55,))   # in range-key range? no; use in-range key
        t2 = mgr.begin()
        for i in range(100, 150):
            ix.insert(t2, (i,), RecordID(2, i), vid=1000 + i)
        t2.commit()
        ix.evict_partition()
        reader2 = mgr.begin()
        ix.search(reader2, (120,))   # absent from partition 0's bloom? no-
        ix.search(reader2, (75,))    # absent from both partitions' range
        # at minimum the filters were consulted without false negatives
        assert [h.key for h in ix.search(reader2, (120,))] == [(120,)]

    def test_prefix_bloom_gates_range_scans(self, env):
        mgr, make, _d = env
        ix = make(use_prefix_bloom=True, prefix_columns=1)
        t = mgr.begin()
        for d in (0, 2, 4, 6, 8):                # gaps in the prefix space
            for o in range(20):
                ix.insert(t, (d, o), RecordID(d, o), vid=d * 100 + o + 1)
        t.commit()
        ix.evict_partition()
        reader = mgr.begin()
        hits = ix.range_scan(reader, (2, 0), (2, 99))
        assert len(hits) == 20
        # absent prefix *inside* the partition's key range: only the prefix
        # bloom filter can skip it
        ix.range_scan(reader, (3, 0), (3, 99))
        assert ix.stats.partitions_skipped_bloom >= 1
