"""Unit tests: shard router building blocks + regression pins.

Covers the partitioners, the coordinator's allocation/decision/layout
log, the ``_intersect`` span clipper, router validation and routing
behavior, the ``shard.*`` metrics and explain plans — plus regression
tests for the single-node assumptions the sharding work uncovered:
``Database(clock=...)`` injection, ``TransactionManager.begin_adopted``
and ``Database.recover(extra_committed=..., txid_floor=...)``.
"""

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (ConfigError, IndexError_,
                          TransactionStateError, UniqueViolationError,
                          WriteConflictError)
from repro.obs.config import ObsConfig
from repro.shard import (HashPartitioner, RangePartitioner, ShardConfig,
                         ShardCoordinator, ShardedDatabase,
                         partitioner_from_state)
from repro.shard.router import _intersect
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.txn.status import TxnStatus

pytestmark = pytest.mark.shard

OBS = EngineConfig(obs=ObsConfig(enabled=True))


def make_router(shards=4, partitioning="hash", config=None, **kw):
    cuts = kw.pop("range_cuts", None)
    if partitioning == "range" and cuts is None:
        cuts = [((100 * (i + 1)) // shards,) for i in range(shards - 1)]
    sdb = ShardedDatabase(config or OBS, ShardConfig(
        shards=shards, partitioning=partitioning, range_cuts=cuts, **kw))
    sdb.create_table("t", [("id", "int"), ("val", "str")], "sias")
    sdb.create_index("ix", "t", ["id"], kind="mvpbt", enable_gc=False)
    return sdb


def fill(sdb, keys):
    txn = sdb.begin()
    for k in keys:
        sdb.insert(txn, "t", (k, f"v{k}"))
    txn.commit()
    return txn.id


# ------------------------------------------------------------- partitioners

class TestPartitioners:
    def test_hash_owner_is_stable_and_in_range(self):
        p = HashPartitioner(4, slots=64)
        owners = [p.shard_of((k,)) for k in range(100)]
        assert all(0 <= o < 4 for o in owners)
        assert owners == [p.shard_of((k,)) for k in range(100)]
        assert len(set(owners)) == 4, "100 keys should hit all 4 shards"

    def test_hash_is_content_based_not_id_based(self):
        # determinism across processes: crc32 of the encoded key, never
        # Python hash() (PYTHONHASHSEED would change layouts)
        p = HashPartitioner(4, slots=64)
        q = HashPartitioner(4, slots=64)
        assert [p.shard_of((k,)) for k in range(50)] == \
            [q.shard_of((k,)) for k in range(50)]

    def test_hash_move_slot(self):
        p = HashPartitioner(2, slots=8)
        key = (7,)
        assert 0 <= p.slot_of(key) < 8
        for s in range(8):
            p = p.move_slot(s, 1)
        assert p.shard_of(key) == 1

    def test_hash_state_round_trip(self):
        p = HashPartitioner(4, slots=16)
        p = p.move_slot(3, 2)
        q = partitioner_from_state(p.to_state())
        assert [q.shard_of((k,)) for k in range(40)] == \
            [p.shard_of((k,)) for k in range(40)]

    def test_range_ownership_and_groups(self):
        p = RangePartitioner(3, [(10,), (20,)])
        assert p.shard_of((0,)) == 0
        assert p.shard_of((9,)) == 0
        assert p.shard_of((10,)) == 1
        assert p.shard_of((19,)) == 1
        assert p.shard_of((20,)) == 2
        groups = p.owner_groups()
        assert [g[2] for g in groups] == [0, 1, 2]
        assert groups[0][0] is None and groups[-1][1] is None

    def test_range_move_and_coalesce(self):
        p = RangePartitioner(2, [(50,)])
        p = p.move_range((20,), (30,), 1)
        assert p.shard_of((25,)) == 1
        assert p.shard_of((19,)) == 0
        assert p.shard_of((30,)) == 0
        q = partitioner_from_state(p.to_state())
        assert [q.shard_of((k,)) for k in range(100)] == \
            [p.shard_of((k,)) for k in range(100)]

    def test_range_groups_coalesce_adjacent_same_owner(self):
        p = RangePartitioner(2, [(50,)])
        p = p.move_range((50,), (60,), 0)  # 0 now owns [None, 60)
        groups = p.owner_groups()
        assert groups[0] == (None, (60,), 0)


# -------------------------------------------------------------- _intersect

class TestIntersect:
    def test_unbounded_query_takes_span(self):
        assert _intersect(None, True, None, True, (10,), (20,)) == \
            ((10,), True, (20,), False)

    def test_disjoint_returns_none(self):
        assert _intersect((30,), True, None, True, (10,), (20,)) is None
        assert _intersect(None, True, (5,), True, (10,), (20,)) is None

    def test_boundary_exclusive_span_hi(self):
        # query hi == span hi: span hi is EXCLUSIVE so it tightens
        assert _intersect(None, True, (20,), True, (10,), (20,)) == \
            ((10,), True, (20,), False)

    def test_inner_query_unchanged(self):
        assert _intersect((12,), False, (18,), True, (10,), (20,)) == \
            ((12,), False, (18,), True)

    def test_open_ended_span(self):
        assert _intersect((5,), True, (15,), True, None, (20,)) == \
            ((5,), True, (15,), True)
        assert _intersect((5,), True, (15,), True, (10,), None) == \
            ((10,), True, (15,), True)


# ------------------------------------------------------------- coordinator

class TestCoordinator:
    def test_snapshot_capture(self):
        c = ShardCoordinator(HashPartitioner(2, slots=4))
        t1, s1 = c.begin()
        t2, s2 = c.begin()
        assert (t1, t2) == (1, 2)
        assert s1.active == frozenset()
        assert s2.active == frozenset({1})
        c.finish(t1)
        _, s3 = c.begin()
        assert 1 not in s3.active and 2 in s3.active

    def _coord_file(self):
        clock = SimClock()
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        return PageFile("coord", device, 512, 4)

    def test_decision_and_layout_recover(self):
        f = self._coord_file()
        c = ShardCoordinator(RangePartitioner(2, [(50,)]), log_file=f)
        c.begin()
        c.log_decision(1)
        c.partitioner = c.partitioner.move_range((10,), (20,), 1)
        c.log_layout()
        r = ShardCoordinator.recover(f, next_floor=c.next_txid)
        assert r.decisions == {1}
        assert r.partitioner.shard_of((15,)) == 1
        assert r.partitioner.shard_of((5,)) == 0
        assert r.next_txid >= c.next_txid

    def test_next_floor_prevents_txid_reuse(self):
        f = self._coord_file()
        c = ShardCoordinator(HashPartitioner(1, slots=4), log_file=f)
        for _ in range(5):
            c.begin()   # ids handed out, none decided
        r = ShardCoordinator.recover(f, next_floor=c.next_txid)
        assert r.next_txid == 6


# ----------------------------------------------- single-node regression pins

class TestSingleNodeHooks:
    def test_database_clock_injection(self):
        clock = SimClock()
        clock.advance(42.0)
        db = Database(EngineConfig(), clock=clock)
        assert db.clock is clock
        assert db.txn.clock is clock or db.clock.now >= 42.0

    def test_begin_adopted_registers_and_bumps_allocator(self):
        db = Database(EngineConfig())
        t_local = db.begin()
        t_local.commit()
        coord = ShardCoordinator(HashPartitioner(1, slots=4))
        coord.begin()  # consume id 1 to diverge the allocators
        txid, snap = coord.begin()
        adopted = db.txn.begin_adopted(txid, snap)
        assert adopted.id == txid
        adopted.commit()
        assert db.txn.status_of(txid) is TxnStatus.COMMITTED
        assert db.begin().id > txid, "local allocator must skip adopted id"

    def test_begin_adopted_rejects_duplicates_and_decided(self):
        db = Database(EngineConfig())
        coord = ShardCoordinator(HashPartitioner(1, slots=4))
        txid, snap = coord.begin()
        db.txn.begin_adopted(txid, snap)
        with pytest.raises(TransactionStateError):
            db.txn.begin_adopted(txid, snap)

    def test_recover_extra_committed_and_floor(self):
        db = Database(EngineConfig(durability=True))
        db.create_table("t", [("id", "int")], "sias")
        db.create_index("ix", "t", ["id"], kind="mvpbt", enable_gc=False)
        txn = db.begin()
        db.insert(txn, "t", (1,))
        txn.commit()
        # a txid this node never saw DML from, decided elsewhere
        ghost = txn.id + 7
        r = Database.recover(db, extra_committed={ghost},
                             txid_floor=ghost + 100)
        assert r.txn.status_of(txn.id) is TxnStatus.COMMITTED
        assert r.txn.status_of(ghost) is TxnStatus.COMMITTED
        assert r.begin().id >= ghost + 100


# ------------------------------------------------------------------ router

class TestRouterValidation:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ShardConfig(shards=0)
        with pytest.raises(ConfigError):
            ShardConfig(shards=2, partitioning="modulo")
        with pytest.raises(ConfigError):
            ShardedDatabase(EngineConfig(), ShardConfig(
                shards=2, partitioning="range"))  # missing cuts

    def test_delta_storage_rejected(self):
        sdb = ShardedDatabase(EngineConfig(), ShardConfig(shards=2))
        with pytest.raises(ConfigError):
            sdb.create_table("d", [("id", "int")], "delta")

    def test_unique_index_must_cover_shard_key(self):
        sdb = ShardedDatabase(EngineConfig(), ShardConfig(shards=2))
        sdb.create_table("t", [("id", "int"), ("val", "str")], "sias")
        with pytest.raises(ConfigError):
            sdb.create_index("u", "t", ["val"], unique=True)
        sdb.create_index("u", "t", ["id"], unique=True,
                         enable_gc=False)  # shard-key unique is fine

    def test_unique_on_shard_key_enforced_globally(self):
        sdb = ShardedDatabase(EngineConfig(), ShardConfig(shards=4))
        sdb.create_table("t", [("id", "int"), ("val", "str")], "sias")
        sdb.create_index("u", "t", ["id"], unique=True, enable_gc=False)
        txn = sdb.begin()
        sdb.insert(txn, "t", (5, "a"))
        txn.commit()
        txn = sdb.begin()
        with pytest.raises(UniqueViolationError):
            sdb.insert(txn, "t", (5, "b"))
        txn.abort()


class TestRouterBehavior:
    def test_point_lookup_is_single_shard(self):
        sdb = make_router(4, "hash")
        fill(sdb, range(30))
        before = sdb.obs.registry.counter_value("shard.queries.fanout")
        txn = sdb.begin()
        assert sdb.select(txn, "ix", (7,)) == [(7, "v7")]
        txn.abort()
        after = sdb.obs.registry.counter_value("shard.queries.fanout")
        assert after - before == 1, "routing index point op fans to ONE"

    def test_range_scan_spans_only_owners(self):
        sdb = make_router(4, "range")
        fill(sdb, range(100))
        txn = sdb.begin()
        plan = sdb.explain_scan(txn, "ix", (5,), (20,))
        assert plan["routing"]["plan"] == "span-concatenation"
        assert plan["routing"]["fanout"] == 1
        rows = sdb.range_select(txn, "ix", (5,), (20,))
        assert [k for k, _v in rows] == list(range(5, 21))
        txn.abort()

    def test_hash_scan_scatters_everywhere_sorted(self):
        sdb = make_router(4, "hash")
        fill(sdb, range(60))
        txn = sdb.begin()
        plan = sdb.explain_scan(txn, "ix", None, None)
        assert plan["routing"]["plan"] == "scatter-merge"
        assert plan["routing"]["fanout"] == 4
        rows = sdb.range_select(txn, "ix", None, None)
        assert [k for k, _v in rows] == sorted(range(60)), \
            "scatter-gather must k-way merge into key order"
        txn.abort()

    def test_commit_metrics_classify_2pc(self):
        sdb = make_router(4, "hash",
                          config=EngineConfig(durability=True,
                                              obs=ObsConfig(enabled=True)))
        reg = sdb.obs.registry
        txn = sdb.begin()          # read-only
        txn.commit()
        fill(sdb, range(20))       # cross-shard (2PC)
        txn = sdb.begin()          # single-shard
        sdb.update_by_key(txn, "ix", (3,), {"val": "x"})
        txn.commit()
        assert reg.counter_value("shard.txn.commits.read_only") == 1
        assert reg.counter_value("shard.txn.commits.cross_shard") == 1
        assert reg.counter_value("shard.txn.commits.single_shard") == 1
        assert reg.counter_value("shard.2pc.decisions") == 1
        assert reg.counter_value("shard.2pc.prepares") == 4
        assert len(sdb.coordinator.decisions) == 1

    def test_cross_shard_move_changes_owner(self):
        sdb = make_router(2, "range", range_cuts=[(50,)])
        fill(sdb, [10])
        assert sdb._owner_of_row("t", (10, "v10")) == 0
        txn = sdb.begin()
        sdb.update_by_key(txn, "ix", (10,), {"id": 80})
        txn.commit()
        txn = sdb.begin()
        assert sdb.select(txn, "ix", (10,)) == []
        assert sdb.select(txn, "ix", (80,)) == [(80, "v10")]
        assert sdb._owner_of_row("t", (80, "v10")) == 1
        txn.abort()

    def test_write_conflict_raises_through_router(self):
        sdb = make_router(2, "hash")
        fill(sdb, [1])
        t1 = sdb.begin()
        t2 = sdb.begin()
        sdb.update_by_key(t1, "ix", (1,), {"val": "a"})
        with pytest.raises(WriteConflictError):
            sdb.update_by_key(t2, "ix", (1,), {"val": "b"})
        t1.commit()
        t2.abort()

    def test_run_transaction_commits_and_returns(self):
        sdb = make_router(2, "hash")

        def work(txn):
            sdb.insert(txn, "t", (1, "a"))
            sdb.insert(txn, "t", (2, "b"))
            return "done"

        assert sdb.run_transaction(work) == "done"
        txn = sdb.begin()
        assert sdb.count_range(txn, "ix", None, None) == 2
        txn.abort()

    def test_abort_leaves_no_trace(self):
        sdb = make_router(4, "hash")
        fill(sdb, range(10))
        txn = sdb.begin()
        sdb.insert(txn, "t", (99, "z"))
        sdb.delete_by_key(txn, "ix", (3,))
        txn.abort()
        txn = sdb.begin()
        assert sdb.select(txn, "ix", (99,)) == []
        assert sdb.select(txn, "ix", (3,)) == [(3, "v3")]
        assert sdb.obs.registry.counter_value("shard.txn.aborts") == 1
        txn.abort()

    def test_seq_scan_merges_all_shards(self):
        sdb = make_router(4, "hash")
        fill(sdb, range(25))
        txn = sdb.begin()
        rows = sdb.seq_scan(txn, "t")
        assert sorted(rows) == [(k, f"v{k}") for k in range(25)]
        txn.abort()

    def test_explain_lookup_shape(self):
        sdb = make_router(4, "hash")
        fill(sdb, range(10))
        txn = sdb.begin()
        plan = sdb.explain_lookup(txn, "ix", (4,))
        assert plan["routing"]["fanout"] == 1
        [shard] = plan["routing"]["shards"]
        assert shard == sdb.partitioner.shard_of((4,))
        assert str(shard) in plan["per_shard"] or \
            shard in plan["per_shard"]
        txn.abort()

    def test_metrics_snapshot_shape(self):
        sdb = make_router(2, "hash")
        fill(sdb, range(10))
        snap = sdb.metrics_snapshot()
        assert "router" in snap and len(snap["shards"]) == 2
        stats = sdb.stats()
        assert stats["shards"] == 2
        assert stats["coordinator"]["next_txid"] >= 2

    def test_independent_clocks_advance_independently(self):
        sdb = make_router(2, "range", range_cuts=[(50,)])
        fill(sdb, [1, 2, 3])   # all on shard 0
        assert sdb.shards[0].clock.now > sdb.shards[1].clock.now
        assert sdb.sim_now >= max(db.clock.now for db in sdb.shards)


class TestRebalance:
    def test_move_range_preserves_history(self):
        sdb = make_router(2, "range", range_cuts=[(50,)])
        fill(sdb, range(0, 40, 2))
        held = sdb.begin()                    # snapshot BEFORE the updates
        txn = sdb.begin()
        for k in range(0, 40, 4):
            sdb.update_by_key(txn, "ix", (k,), {"val": f"new{k}"})
        txn.commit()
        summary = sdb.move_range((0,), (30,), 1)
        assert summary["records_moved"] > 0
        assert summary["versions_moved"] >= summary["chains_moved"]
        # held snapshot still sees ONLY the original values
        rows = dict(sdb.range_select(held, "ix", None, None))
        assert rows == {k: f"v{k}" for k in range(0, 40, 2)}
        held.abort()
        txn = sdb.begin()
        rows = dict(sdb.range_select(txn, "ix", None, None))
        want = {k: (f"new{k}" if k % 4 == 0 else f"v{k}")
                for k in range(0, 40, 2)}
        assert rows == want
        txn.abort()
        assert sdb.obs.registry.counter_value("shard.rebalance.count") == 1

    def test_move_slot_requires_hash_and_vice_versa(self):
        sdb = make_router(2, "range", range_cuts=[(50,)])
        with pytest.raises(ConfigError):
            sdb.move_slot(0, 1)
        sdb2 = make_router(2, "hash")
        with pytest.raises(ConfigError):
            sdb2.move_range((0,), (10,), 1)

    def test_rebalance_rejected_with_pending_writes(self):
        sdb = make_router(2, "hash")
        txn = sdb.begin()
        sdb.insert(txn, "t", (1, "a"))
        with pytest.raises(IndexError_):
            sdb.move_slot(0, 1)
        txn.commit()
