"""Unit tests for the shared buffer pool."""

import pytest

from repro.buffer.pool import BufferPool
from repro.config import CostModel
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    file = PageFile("f", device, 8192, 8)
    pool = BufferPool(capacity_pages=4)
    return clock, device, file, pool


def _write_pages(file, n):
    pages = []
    for i in range(n):
        p = file.allocate_page()
        file.write_page(p, f"payload-{i}")
        pages.append(p)
    return pages


class TestHitsAndMisses:
    def test_first_get_is_miss(self, env):
        _c, _d, f, pool = env
        (p,) = _write_pages(f, 1)
        pool.get(f, p)
        stats = pool.stats_for(f)
        assert stats.requests == 1
        assert stats.hits == 0

    def test_second_get_is_hit(self, env):
        _c, _d, f, pool = env
        (p,) = _write_pages(f, 1)
        pool.get(f, p)
        pool.get(f, p)
        assert pool.stats_for(f).hits == 1

    def test_miss_charges_device(self, env):
        clock, _d, f, pool = env
        (p,) = _write_pages(f, 1)
        before = clock.now
        pool.get(f, p)
        after_miss = clock.now
        pool.get(f, p)
        assert after_miss > before
        assert clock.now == after_miss   # hit is free without cost model

    def test_hit_rate(self, env):
        _c, _d, f, pool = env
        (p,) = _write_pages(f, 1)
        pool.get(f, p)
        pool.get(f, p)
        pool.get(f, p)
        assert pool.stats_for(f).hit_rate == pytest.approx(2 / 3)


class TestEviction:
    def test_capacity_respected(self, env):
        _c, _d, f, pool = env
        pages = _write_pages(f, 6)
        for p in pages:
            pool.get(f, p)
        assert pool.resident_pages == 4
        assert pool.evictions == 2

    def test_lru_eviction_order(self, env):
        _c, _d, f, pool = env
        pages = _write_pages(f, 5)
        for p in pages[:4]:
            pool.get(f, p)
        pool.get(f, pages[0])   # refresh page 0
        pool.get(f, pages[4])   # evicts page 1, not 0
        assert pool.contains(f, pages[0])
        assert not pool.contains(f, pages[1])

    def test_dirty_page_written_back_on_eviction(self, env):
        _c, d, f, pool = env
        pages = _write_pages(f, 5)
        pool.get(f, pages[0])
        pool.mark_dirty(f, pages[0])
        writes_before = f.physical_writes
        for p in pages[1:]:
            pool.get(f, p)
        assert f.physical_writes == writes_before + 1
        assert pool.dirty_writebacks == 1

    def test_clean_page_dropped_silently(self, env):
        _c, _d, f, pool = env
        pages = _write_pages(f, 5)
        writes_before = f.physical_writes
        for p in pages:
            pool.get(f, p)
        assert f.physical_writes == writes_before


class TestPutFlushDiscard:
    def test_put_installs_without_read(self, env):
        _c, _d, f, pool = env
        p = f.allocate_page()
        pool.put(f, p, "fresh", dirty=True)
        assert pool.get(f, p) == "fresh"
        assert pool.stats_for(f).hits == 1

    def test_flush_writes_dirty_pages(self, env):
        _c, _d, f, pool = env
        p = f.allocate_page()
        pool.put(f, p, "fresh", dirty=True)
        flushed = pool.flush(f)
        assert flushed == 1
        assert f.peek(p) == "fresh"

    def test_flush_all_files(self, env):
        clock, d, f, pool = env
        f2 = PageFile("g", d, 8192, 8)
        p1, p2 = f.allocate_page(), f2.allocate_page()
        pool.put(f, p1, "a")
        pool.put(f2, p2, "b")
        assert pool.flush() == 2

    def test_discard_drops_without_writeback(self, env):
        _c, _d, f, pool = env
        p = f.allocate_page()
        pool.put(f, p, "x", dirty=True)
        pool.discard(f, p)
        assert not pool.contains(f, p)
        assert pool.flush(f) == 0

    def test_get_or_create_uses_factory(self, env):
        _c, _d, f, pool = env
        p = f.allocate_page()
        page = pool.get_or_create(f, p, lambda: "created")
        assert page == "created"

    def test_get_or_create_prefers_persisted(self, env):
        _c, _d, f, pool = env
        (p,) = _write_pages(f, 1)
        page = pool.get_or_create(f, p, lambda: "created")
        assert page == "payload-0"


class TestCPUCharging:
    def test_page_cpu_charged_per_request(self):
        clock = SimClock()
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = PageFile("f", device, 8192, 8)
        cost = CostModel()
        pool = BufferPool(4, clock=clock, cost=cost)
        p = file.allocate_page()
        pool.put(file, p, "x", dirty=False)
        before = clock.now
        pool.get(file, p)   # hit: CPU only
        assert clock.now == pytest.approx(before + cost.page_cpu)
