"""Tests for the serve layer's lock-ordering discipline and scheduler.

The ordering checker is the runtime teeth behind DESIGN.md §15.2: these
tests pin that ascending acquisition is accepted, that every descending
or equal-rank acquisition raises, and that release bookkeeping is LIFO —
plus the FairScheduler's single-thread contract (grant/release, tick
accounting, close semantics)."""

import threading

import pytest

from repro.errors import ConcurrencyError
from repro.serve.locks import (RANK_ENGINE, RANK_GROUP_QUEUE,
                               RANK_TXN_COMMITLOG, RANK_TXN_MANAGER,
                               OrderedLock, held_ranks, note_acquired,
                               note_released)
from repro.serve.scheduler import FairScheduler


class TestRankBookkeeping:
    def test_ascending_acquisition_is_legal(self):
        note_acquired(RANK_ENGINE, "engine")
        note_acquired(RANK_TXN_MANAGER, "manager")
        note_acquired(RANK_TXN_COMMITLOG, "commitlog")
        note_acquired(RANK_GROUP_QUEUE, "queue")
        assert [rank for rank, _ in held_ranks()] == [10, 20, 30, 40]
        note_released(RANK_GROUP_QUEUE, "queue")
        note_released(RANK_TXN_COMMITLOG, "commitlog")
        note_released(RANK_TXN_MANAGER, "manager")
        note_released(RANK_ENGINE, "engine")
        assert held_ranks() == []

    def test_descending_acquisition_raises(self):
        note_acquired(RANK_GROUP_QUEUE, "queue")
        try:
            with pytest.raises(ConcurrencyError, match="ascending rank"):
                note_acquired(RANK_ENGINE, "engine")
        finally:
            note_released(RANK_GROUP_QUEUE, "queue")

    def test_equal_rank_acquisition_raises(self):
        note_acquired(RANK_TXN_MANAGER, "manager-a")
        try:
            with pytest.raises(ConcurrencyError):
                note_acquired(RANK_TXN_MANAGER, "manager-b")
        finally:
            note_released(RANK_TXN_MANAGER, "manager-a")

    def test_non_lifo_release_raises(self):
        note_acquired(RANK_ENGINE, "engine")
        note_acquired(RANK_GROUP_QUEUE, "queue")
        try:
            with pytest.raises(ConcurrencyError, match="out of order"):
                note_released(RANK_ENGINE, "engine")
        finally:
            note_released(RANK_GROUP_QUEUE, "queue")
            note_released(RANK_ENGINE, "engine")

    def test_stacks_are_per_thread(self):
        note_acquired(RANK_GROUP_QUEUE, "queue")
        seen: list[list] = []

        def other():
            seen.append(held_ranks())
            # this thread holds nothing: low-rank acquisition is fine
            note_acquired(RANK_ENGINE, "engine")
            note_released(RANK_ENGINE, "engine")

        try:
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        finally:
            note_released(RANK_GROUP_QUEUE, "queue")
        assert seen == [[]]


class TestViolationDiagnostics:
    """The enriched ConcurrencyError payload: thread name, full held
    stack, and the sorted set of ranks involved (§15.2 satellite)."""

    def test_violation_names_the_thread(self):
        note_acquired(RANK_GROUP_QUEUE, "queue")
        try:
            with pytest.raises(ConcurrencyError) as excinfo:
                note_acquired(RANK_ENGINE, "engine")
        finally:
            note_released(RANK_GROUP_QUEUE, "queue")
        message = str(excinfo.value)
        assert repr(threading.current_thread().name) in message

    def test_violation_lists_the_full_held_stack(self):
        note_acquired(RANK_TXN_MANAGER, "manager")
        note_acquired(RANK_TXN_COMMITLOG, "commitlog")
        note_acquired(RANK_GROUP_QUEUE, "queue")
        try:
            with pytest.raises(ConcurrencyError) as excinfo:
                note_acquired(RANK_ENGINE, "engine")
        finally:
            note_released(RANK_GROUP_QUEUE, "queue")
            note_released(RANK_TXN_COMMITLOG, "commitlog")
            note_released(RANK_TXN_MANAGER, "manager")
        message = str(excinfo.value)
        assert "manager(rank 20), commitlog(rank 30), queue(rank 40)" \
            in message
        assert "ranks involved: [10, 20, 30, 40]" in message

    def test_release_mismatch_reports_stack_and_ranks(self):
        note_acquired(RANK_TXN_MANAGER, "manager")
        try:
            with pytest.raises(ConcurrencyError) as excinfo:
                note_released(RANK_TXN_MANAGER, "impostor")
        finally:
            note_released(RANK_TXN_MANAGER, "manager")
        message = str(excinfo.value)
        assert "releasing impostor(rank 20)" in message
        assert "manager(rank 20)" in message
        assert "releases must be LIFO" in message

    def test_release_on_empty_stack_raises(self):
        with pytest.raises(ConcurrencyError, match="lock release"):
            note_released(RANK_ENGINE, "phantom")

    def test_worker_thread_name_appears_in_violation(self):
        captured: list[str] = []

        def collide() -> None:
            note_acquired(RANK_GROUP_QUEUE, "queue")
            try:
                note_acquired(RANK_ENGINE, "engine")
            except ConcurrencyError as exc:
                captured.append(str(exc))
            finally:
                note_released(RANK_GROUP_QUEUE, "queue")

        thread = threading.Thread(target=collide, name="collider")
        thread.start()
        thread.join()
        assert len(captured) == 1
        assert "'collider'" in captured[0]


class TestOrderedLock:
    def test_context_manager_tracks_rank(self):
        lock = OrderedLock("t.queue", RANK_GROUP_QUEUE)
        with lock:
            assert held_ranks() == [(RANK_GROUP_QUEUE, "t.queue")]
        assert held_ranks() == []

    def test_inversion_through_ordered_locks_raises(self):
        outer = OrderedLock("t.outer", RANK_TXN_COMMITLOG)
        inner = OrderedLock("t.inner", RANK_TXN_MANAGER)
        with outer:
            with pytest.raises(ConcurrencyError):
                inner.acquire()
        # the failed acquisition must not leak bookkeeping
        assert held_ranks() == []

    def test_condition_shares_the_mutex(self):
        lock = OrderedLock("t.q", RANK_GROUP_QUEUE)
        cond = lock.condition()
        with lock:
            cond.notify_all()  # would raise if the mutex were different

    def test_reentrant_reacquisition_raises(self):
        # OrderedLock is non-re-entrant by design: same rank never ascends
        lock = OrderedLock("t.q", RANK_GROUP_QUEUE)
        with lock:
            with pytest.raises(ConcurrencyError) as excinfo:
                lock.acquire()
        assert held_ranks() == []
        assert "t.q(rank 40)" in str(excinfo.value)

    def test_failed_mutex_acquire_unwinds_bookkeeping(self):
        # if the raw mutex acquisition blows up after the rank was noted,
        # the note must be rolled back or the stack poisons the thread
        class ExplodingMutex:
            def acquire(self) -> None:
                raise RuntimeError("simulated interpreter shutdown")

            def release(self) -> None:  # pragma: no cover - never reached
                raise AssertionError("release without acquire")

        lock = OrderedLock("t.q", RANK_GROUP_QUEUE)
        lock._lock = ExplodingMutex()
        with pytest.raises(RuntimeError, match="simulated"):
            lock.acquire()
        assert held_ranks() == []
        # the thread is not poisoned: a fresh ordered lock still works
        with OrderedLock("t.q2", RANK_GROUP_QUEUE):
            assert [name for _, name in held_ranks()] == ["t.q2"]


class TestFairScheduler:
    def test_slot_roundtrip_counts_ticks(self):
        sched = FairScheduler()
        with sched.slot("oltp"):
            assert sched.queue_depth == 0
        with sched.slot("scan"):
            pass
        assert sched.ticks == 2
        stats = sched.stats()
        assert stats["oltp"]["grants"] == 1
        assert stats["scan"]["grants"] == 1
        assert stats["scan"]["max_wait_ticks"] == 0

    def test_release_without_holder_raises(self):
        sched = FairScheduler()
        with pytest.raises(ConcurrencyError):
            sched.release()

    def test_closed_scheduler_refuses_acquisition(self):
        sched = FairScheduler()
        sched.close()
        with pytest.raises(ConcurrencyError, match="closed"):
            sched.acquire("oltp")

    def test_slot_participates_in_rank_order(self):
        sched = FairScheduler()
        with sched.slot("oltp"):
            assert held_ranks() == [(RANK_ENGINE, "serve.engine")]
            # ascending into the group queue is legal inside the slot
            with OrderedLock("t.q", RANK_GROUP_QUEUE):
                pass
        assert held_ranks() == []

    def test_requesting_slot_while_holding_a_lock_raises(self):
        sched = FairScheduler()
        with OrderedLock("t.q", RANK_GROUP_QUEUE):
            with pytest.raises(ConcurrencyError):
                sched.acquire("commit")
        assert held_ranks() == []

    def test_fifo_grant_order(self):
        """Waiters are granted in exact arrival order (the ticket queue)."""
        sched = FairScheduler()
        order: list[int] = []
        arrived = [threading.Event() for _ in range(3)]

        def waiter(i: int) -> None:
            # announce arrival only once the ticket is actually queued:
            # acquire() enqueues before blocking, so depth is the signal
            with sched.slot("oltp"):
                order.append(i)

        sched.acquire("main")  # hold the slot so all waiters queue up
        threads = []
        for i in range(3):
            t = threading.Thread(target=waiter, args=(i,))
            t.start()
            threads.append(t)
            # wait until this waiter is enqueued before starting the next,
            # making the arrival order deterministic
            while sched.queue_depth < i + 1:
                arrived[i].wait(0.001)
        sched.release()
        for t in threads:
            t.join()
        assert order == [0, 1, 2]
