"""Unit tests for the YCSB driver."""

import pytest

from repro.config import EngineConfig
from repro.errors import WorkloadError
from repro.kv import make_kv_store
from repro.workloads.ycsb import (WORKLOAD_A, WORKLOADS,
                                  YCSBConfig, YCSBRunner, run_workload)

CONFIG = EngineConfig(buffer_pool_pages=64,
                      partition_buffer_bytes=16 * 8192)


class TestConfig:
    def test_presets_proportions_sum_to_one(self):
        for name, preset in WORKLOADS.items():
            total = (preset.read_proportion + preset.update_proportion
                     + preset.insert_proportion + preset.scan_proportion
                     + preset.rmw_proportion)
            assert total == pytest.approx(1.0), name

    def test_invalid_proportions_rejected(self):
        with pytest.raises(WorkloadError):
            YCSBConfig(read_proportion=0.9, update_proportion=0.5)

    def test_scaled_copy(self):
        scaled = WORKLOAD_A.scaled(record_count=10, operation_count=20)
        assert scaled.record_count == 10
        assert scaled.operation_count == 20
        assert scaled.read_proportion == WORKLOAD_A.read_proportion


class TestRunner:
    def test_run_before_load_rejected(self):
        store = make_kv_store("mvpbt", CONFIG)
        runner = YCSBRunner(store, WORKLOAD_A.scaled(record_count=10))
        with pytest.raises(WorkloadError):
            runner.run()

    def test_load_populates_all_records(self):
        store = make_kv_store("mvpbt", CONFIG)
        runner = YCSBRunner(store, WORKLOAD_A.scaled(record_count=50))
        runner.load()
        for i in (0, 25, 49):
            assert store.get(f"user{i:010d}") is not None

    def test_mix_respected(self):
        store = make_kv_store("mvpbt", CONFIG)
        cfg = WORKLOAD_A.scaled(record_count=100, operation_count=1000)
        runner = YCSBRunner(store, cfg, "A")
        runner.load()
        result = runner.run()
        assert result.operations == 1000
        assert result.counts["read"] + result.counts["update"] == 1000
        assert 300 < result.counts["read"] < 700

    def test_workload_d_inserts_extend_keyspace(self):
        store = make_kv_store("mvpbt", CONFIG)
        result = run_workload(store, "D", record_count=100,
                              operation_count=500)
        assert result.counts["insert"] > 0
        assert result.not_found == 0   # "latest" reads find inserted keys

    def test_workload_e_scans(self):
        store = make_kv_store("lsm", CONFIG)
        result = run_workload(store, "E", record_count=100,
                              operation_count=200)
        assert result.counts["scan"] > 150

    def test_throughput_positive(self):
        store = make_kv_store("btree", CONFIG)
        result = run_workload(store, "A", record_count=200,
                              operation_count=500)
        assert result.throughput > 0
        assert result.elapsed_sim_seconds > 0

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            store = make_kv_store("mvpbt", CONFIG)
            results.append(run_workload(store, "A", record_count=100,
                                        operation_count=300, seed=11))
        assert results[0].counts == results[1].counts
        assert results[0].elapsed_sim_seconds == pytest.approx(
            results[1].elapsed_sim_seconds)

    def test_unknown_workload(self):
        store = make_kv_store("btree", CONFIG)
        with pytest.raises(WorkloadError):
            run_workload(store, "Z")


class TestWorkloadsCF:
    def test_workload_c_is_read_only(self):
        store = make_kv_store("mvpbt", CONFIG)
        result = run_workload(store, "C", record_count=100,
                              operation_count=300)
        assert result.counts["read"] == 300
        assert result.not_found == 0

    def test_workload_f_mixes_reads_and_rmw(self):
        store = make_kv_store("mvpbt", CONFIG)
        result = run_workload(store, "F", record_count=100,
                              operation_count=400)
        assert result.counts["rmw"] > 100
        assert result.counts["read"] > 100
        assert result.counts["rmw"] + result.counts["read"] == 400

    def test_rmw_actually_writes(self):
        import dataclasses
        from repro.workloads.ycsb import WORKLOAD_F, YCSBRunner
        store = make_kv_store("btree", CONFIG)
        cfg = dataclasses.replace(WORKLOAD_F, record_count=50,
                                  operation_count=200)
        runner = YCSBRunner(store, cfg, "F")
        runner.load()
        runner.run()
        assert store.stats.updates + store.stats.inserts > 50
