"""Unit tests for RecordID."""

from repro.storage.recordid import NULL_RID, RID_BYTES, RecordID


class TestRecordID:
    def test_pack_unpack_roundtrip(self):
        rid = RecordID(12345, 678)
        assert RecordID.unpack(rid.pack()) == rid

    def test_pack_size(self):
        assert len(RecordID(1, 2).pack()) == RID_BYTES

    def test_unpack_with_offset(self):
        data = b"\x00\x00" + RecordID(7, 9).pack()
        assert RecordID.unpack(data, 2) == RecordID(7, 9)

    def test_null_rid(self):
        assert NULL_RID.is_null
        assert not RecordID(0, 0).is_null

    def test_equality_and_hash(self):
        assert RecordID(1, 2) == RecordID(1, 2)
        assert hash(RecordID(1, 2)) == hash(RecordID(1, 2))
        assert RecordID(1, 2) != RecordID(1, 3)

    def test_ordering_page_major(self):
        assert RecordID(1, 99) < RecordID(2, 0)
        assert RecordID(1, 1) < RecordID(1, 2)

    def test_repr(self):
        assert repr(RecordID(3, 4)) == "RID(3,4)"
        assert repr(NULL_RID) == "RID(null)"
