"""Unit tests for the SIAS append-only version store."""

import pytest

from repro.buffer.pool import BufferPool
from repro.errors import TupleNotFoundError, WriteConflictError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile
from repro.table.sias import SIASTable
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(64)
    table = SIASTable("s", PageFile("s", device, 8192, 8), pool)
    return TransactionManager(clock), table, device


class TestAppendBehaviour:
    def test_versions_never_modified_in_place(self, env):
        mgr, table, _dev = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        new_rid = table.update(t, rid, (1, "b"))
        old = table.fetch(rid)
        assert old.data == (1, "a")
        assert old.ts_invalidate is None       # one-point invalidation
        assert table.fetch(new_rid).prev_rid == rid

    def test_entry_point_follows_newest(self, env):
        mgr, table, _dev = env
        t = mgr.begin()
        vid, rid = table.insert(t, (1, "a"))
        new_rid = table.update(t, rid, (1, "b"))
        assert table.entry_point(vid) == new_rid

    def test_tail_flush_is_sequential(self, env):
        mgr, table, dev = env
        t = mgr.begin()
        # fill enough pages to trigger an extent flush
        for i in range(2000):
            table.insert(t, (i, "x" * 50))
        t.commit()
        assert table.tail_flushes >= 1
        assert dev.stats.seq_writes + dev.stats.rand_writes >= 1
        # no random page rewrites happen on the append path
        assert dev.stats.rand_writes <= table.tail_flushes

    def test_fetch_from_unflushed_tail_charges_no_io(self, env):
        mgr, table, dev = env
        t = mgr.begin()
        _, rid = table.insert(t, (1, "a"))
        reads_before = dev.stats.reads
        table.fetch(rid)
        assert dev.stats.reads == reads_before


class TestChains:
    def test_visible_version_walks_new_to_old(self, env):
        mgr, table, _dev = env
        t1 = mgr.begin()
        vid, rid = table.insert(t1, (1, "v0"))
        t1.commit()
        old_reader = mgr.begin()
        last = rid
        for i in range(5):
            t = mgr.begin()
            last = table.update(t, last, (1, f"v{i + 1}"))
            t.commit()
        entry = table.entry_point(vid)
        assert table.visible_version(old_reader, entry)[1].data == (1, "v0")
        fresh = mgr.begin()
        assert table.visible_version(fresh, entry)[1].data == (1, "v5")

    def test_tombstone_terminates_chain(self, env):
        mgr, table, _dev = env
        t1 = mgr.begin()
        vid, rid = table.insert(t1, (1, "a"))
        t1.commit()
        t2 = mgr.begin()
        tomb = table.delete(t2, rid)
        t2.commit()
        reader = mgr.begin()
        assert table.visible_version(reader, tomb) is None
        assert table.fetch(tomb).is_tombstone

    def test_aborted_version_skipped_in_chain(self, env):
        mgr, table, _dev = env
        t1 = mgr.begin()
        vid, rid = table.insert(t1, (1, "good"))
        t1.commit()
        t2 = mgr.begin()
        bad_rid = table.update(t2, rid, (1, "bad"))
        t2.abort()
        reader = mgr.begin()
        assert table.visible_version(reader, bad_rid)[1].data == (1, "good")

    def test_update_of_stale_version_conflicts(self, env):
        mgr, table, _dev = env
        t1 = mgr.begin()
        vid, rid = table.insert(t1, (1, "a"))
        t1.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "b"))
        t2.commit()
        t3 = mgr.begin()
        with pytest.raises(WriteConflictError):
            table.update(t3, rid, (1, "c"))

    def test_update_after_aborted_successor_repoints_entry(self, env):
        mgr, table, _dev = env
        t1 = mgr.begin()
        vid, rid = table.insert(t1, (1, "a"))
        t1.commit()
        t2 = mgr.begin()
        table.update(t2, rid, (1, "aborted"))
        t2.abort()
        t3 = mgr.begin()
        new_rid = table.update(t3, rid, (1, "c"))
        t3.commit()
        assert table.entry_point(vid) == new_rid


class TestScan:
    def test_scan_visible_one_row_per_tuple(self, env):
        mgr, table, _dev = env
        t = mgr.begin()
        rids = {}
        for i in range(20):
            _, rids[i] = table.insert(t, (i, "v0"))
        t.commit()
        t2 = mgr.begin()
        table.update(t2, rids[3], (3, "v1"))
        table.delete(t2, rids[4])
        t2.commit()
        reader = mgr.begin()
        rows = dict((row[0], row[1]) for _rid, row in table.scan_visible(reader))
        assert len(rows) == 19
        assert rows[3] == "v1"
        assert 4 not in rows

    def test_missing_vid_raises(self, env):
        _mgr, table, _dev = env
        with pytest.raises(TupleNotFoundError):
            table.entry_point(12345)
