"""Unit tests for the MV-PBT partition buffer policy."""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.errors import ConfigError


class FakeIndex:
    def __init__(self, name, size):
        self.name = name
        self.size = size
        self.evicted = 0

    def memory_partition_bytes(self):
        return self.size

    def evict_partition(self):
        self.size = 0
        self.evicted += 1


class TestPartitionBuffer:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            PartitionBuffer(0)

    def test_no_eviction_under_budget(self):
        pb = PartitionBuffer(1000)
        ix = FakeIndex("a", 500)
        pb.register(ix)
        assert pb.maybe_evict() == 0
        assert ix.evicted == 0

    def test_largest_partition_evicted_first(self):
        pb = PartitionBuffer(1000)
        small, big = FakeIndex("small", 400), FakeIndex("big", 700)
        pb.register(small)
        pb.register(big)
        pb.maybe_evict()
        assert big.evicted == 1
        assert small.evicted == 0

    def test_evicts_until_under_budget(self):
        pb = PartitionBuffer(400)
        a, b, c = FakeIndex("a", 400), FakeIndex("b", 300), FakeIndex("c", 200)
        for ix in (a, b, c):
            pb.register(ix)
        evicted = pb.maybe_evict()
        assert evicted == 2              # 900 -> 500 -> 200 <= 400
        assert (a.evicted, b.evicted, c.evicted) == (1, 1, 0)

    def test_used_bytes_sums_all_indices(self):
        pb = PartitionBuffer(10_000)
        pb.register(FakeIndex("a", 100))
        pb.register(FakeIndex("b", 200))
        assert pb.used_bytes == 300

    def test_register_idempotent(self):
        pb = PartitionBuffer(1000)
        ix = FakeIndex("a", 100)
        pb.register(ix)
        pb.register(ix)
        assert pb.used_bytes == 100

    def test_unregister(self):
        pb = PartitionBuffer(1000)
        ix = FakeIndex("a", 100)
        pb.register(ix)
        pb.unregister(ix)
        assert pb.used_bytes == 0

    def test_empty_partitions_never_chosen(self):
        pb = PartitionBuffer(100)
        ix = FakeIndex("a", 0)
        pb.register(ix)
        # over budget cannot be resolved by evicting empty partitions
        assert pb.maybe_evict() == 0
