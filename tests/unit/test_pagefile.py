"""Unit tests for page files."""

import pytest

from repro.errors import PageNotFoundError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile


@pytest.fixture
def setup():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    return clock, device, PageFile("f", device, 8192, 8)


class TestAllocation:
    def test_pages_numbered_sequentially(self, setup):
        _c, _d, f = setup
        assert f.allocate_page() == 0
        assert f.allocate_page() == 1

    def test_pages_within_extent_are_contiguous(self, setup):
        _c, d, f = setup
        f.allocate_page()
        f.allocate_page()
        assert f._addresses[1] == f._addresses[0] + 8192

    def test_free_page_is_reused(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, "x")
        f.free_page(p)
        assert f.allocate_page() == p

    def test_allocated_pages_counter(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.allocate_page()
        f.write_page(p, "x")
        f.free_page(p)
        assert f.allocated_pages == 1
        assert f.max_page_no == 2


class TestReadWrite:
    def test_write_then_read(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, {"data": 1})
        assert f.read_page(p) == {"data": 1}

    def test_read_unwritten_page_raises(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        with pytest.raises(PageNotFoundError):
            f.read_page(p)

    def test_read_unallocated_raises(self, setup):
        _c, _d, f = setup
        with pytest.raises(PageNotFoundError):
            f.read_page(99)

    def test_io_counters(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, "x")
        f.read_page(p)
        assert f.physical_writes == 1
        assert f.physical_reads == 1

    def test_io_charges_device(self, setup):
        clock, d, f = setup
        p = f.allocate_page()
        before = clock.now
        f.write_page(p, "x")
        assert clock.now > before

    def test_put_page_nocost_charges_nothing(self, setup):
        clock, _d, f = setup
        p = f.allocate_page()
        before = clock.now
        f.put_page_nocost(p, "x")
        assert clock.now == before
        assert f.peek(p) == "x"


class TestAppendExtents:
    def test_append_returns_new_page_numbers(self, setup):
        _c, _d, f = setup
        nos = f.append_extents(["a", "b", "c"])
        assert nos == [0, 1, 2]
        assert f.peek(1) == "b"

    def test_append_issues_one_write_per_extent(self, setup):
        _c, d, f = setup
        f.append_extents([str(i) for i in range(20)])  # 20 pages, 8/extent
        assert f.physical_writes == 3

    def test_append_writes_are_sequential_on_device(self, setup):
        _c, d, f = setup
        f.append_extents([str(i) for i in range(24)])
        # first write random (no prior stream), the rest continue the stream
        assert d.stats.seq_writes == 2
        assert d.stats.rand_writes == 1

    def test_flush_pages_sequential_groups_runs(self, setup):
        _c, d, f = setup
        pages = [f.allocate_page() for _ in range(8)]
        f.flush_pages_sequential([(p, f"pl{p}") for p in pages])
        assert f.physical_writes == 1
        assert f.peek(pages[3]) == "pl3"

    def test_flush_pages_sequential_splits_noncontiguous(self, setup):
        _c, _d, f = setup
        pages = [f.allocate_page() for _ in range(3)]   # extent 1
        for _ in range(8):
            f.allocate_page()
        late = f.allocate_page()                         # later extent
        f.flush_pages_sequential([(pages[0], "a"), (pages[1], "b"),
                                  (late, "z")])
        assert f.physical_writes == 2


class TestFreePageReuse:
    """free_page / allocate_page reuse semantics (WAL truncation relies on
    these: a freed page's old contents must never resurface)."""

    def test_free_drops_contents(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, "stale")
        f.free_page(p)
        q = f.allocate_page()
        assert q == p
        with pytest.raises(PageNotFoundError):
            f.peek(q)
        with pytest.raises(PageNotFoundError):
            f.read_page(q)

    def test_free_unallocated_raises(self, setup):
        _c, _d, f = setup
        with pytest.raises(PageNotFoundError):
            f.free_page(0)

    def test_reused_page_keeps_device_address(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        addr = f._addresses[p]
        f.free_page(p)
        assert f.allocate_page() == p
        assert f._addresses[p] == addr

    def test_reuse_is_lifo_and_exhausts_before_growing(self, setup):
        _c, _d, f = setup
        pages = [f.allocate_page() for _ in range(3)]
        for p in pages:
            f.free_page(p)
        assert f.allocate_page() == pages[2]
        assert f.allocate_page() == pages[1]
        assert f.allocate_page() == pages[0]
        assert f.allocate_page() == 3          # free list empty: fresh page
        assert f.max_page_no == 4

    def test_double_free_then_double_allocate(self, setup):
        _c, _d, f = setup
        a, b = f.allocate_page(), f.allocate_page()
        f.free_page(a)
        f.free_page(b)
        assert {f.allocate_page(), f.allocate_page()} == {a, b}
        assert f.allocated_pages == 2


class TestPutPageNocost:
    """put_page_nocost installs contents without any device-side effect."""

    def test_no_sim_time_advance(self, setup):
        clock, _d, f = setup
        p = f.allocate_page()
        before = clock.now
        f.put_page_nocost(p, {"k": 1})
        assert clock.now == before
        assert f.peek(p) == {"k": 1}

    def test_no_trace_entry_and_no_stats(self, setup):
        _c, d, f = setup
        d.trace.enable()
        p = f.allocate_page()
        f.put_page_nocost(p, "payload")
        assert len(d.trace) == 0
        assert d.stats.reads == 0 and d.stats.writes == 0
        assert d.stats.bytes_written == 0

    def test_no_file_counter_bump(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.put_page_nocost(p, "x")
        assert f.physical_writes == 0
        assert f.physical_reads == 0

    def test_unallocated_page_rejected(self, setup):
        _c, _d, f = setup
        with pytest.raises(PageNotFoundError):
            f.put_page_nocost(7, "x")

    def test_overwrites_prior_contents(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, "old")
        f.put_page_nocost(p, "new")
        assert f.peek(p) == "new"
        assert f.physical_writes == 1          # only the paid write counted
