"""Unit tests for page files."""

import pytest

from repro.errors import PageNotFoundError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile


@pytest.fixture
def setup():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    return clock, device, PageFile("f", device, 8192, 8)


class TestAllocation:
    def test_pages_numbered_sequentially(self, setup):
        _c, _d, f = setup
        assert f.allocate_page() == 0
        assert f.allocate_page() == 1

    def test_pages_within_extent_are_contiguous(self, setup):
        _c, d, f = setup
        f.allocate_page()
        f.allocate_page()
        assert f._addresses[1] == f._addresses[0] + 8192

    def test_free_page_is_reused(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, "x")
        f.free_page(p)
        assert f.allocate_page() == p

    def test_allocated_pages_counter(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.allocate_page()
        f.write_page(p, "x")
        f.free_page(p)
        assert f.allocated_pages == 1
        assert f.max_page_no == 2


class TestReadWrite:
    def test_write_then_read(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, {"data": 1})
        assert f.read_page(p) == {"data": 1}

    def test_read_unwritten_page_raises(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        with pytest.raises(PageNotFoundError):
            f.read_page(p)

    def test_read_unallocated_raises(self, setup):
        _c, _d, f = setup
        with pytest.raises(PageNotFoundError):
            f.read_page(99)

    def test_io_counters(self, setup):
        _c, _d, f = setup
        p = f.allocate_page()
        f.write_page(p, "x")
        f.read_page(p)
        assert f.physical_writes == 1
        assert f.physical_reads == 1

    def test_io_charges_device(self, setup):
        clock, d, f = setup
        p = f.allocate_page()
        before = clock.now
        f.write_page(p, "x")
        assert clock.now > before

    def test_put_page_nocost_charges_nothing(self, setup):
        clock, _d, f = setup
        p = f.allocate_page()
        before = clock.now
        f.put_page_nocost(p, "x")
        assert clock.now == before
        assert f.peek(p) == "x"


class TestAppendExtents:
    def test_append_returns_new_page_numbers(self, setup):
        _c, _d, f = setup
        nos = f.append_extents(["a", "b", "c"])
        assert nos == [0, 1, 2]
        assert f.peek(1) == "b"

    def test_append_issues_one_write_per_extent(self, setup):
        _c, d, f = setup
        f.append_extents([str(i) for i in range(20)])  # 20 pages, 8/extent
        assert f.physical_writes == 3

    def test_append_writes_are_sequential_on_device(self, setup):
        _c, d, f = setup
        f.append_extents([str(i) for i in range(24)])
        # first write random (no prior stream), the rest continue the stream
        assert d.stats.seq_writes == 2
        assert d.stats.rand_writes == 1

    def test_flush_pages_sequential_groups_runs(self, setup):
        _c, d, f = setup
        pages = [f.allocate_page() for _ in range(8)]
        f.flush_pages_sequential([(p, f"pl{p}") for p in pages])
        assert f.physical_writes == 1
        assert f.peek(pages[3]) == "pl3"

    def test_flush_pages_sequential_splits_noncontiguous(self, setup):
        _c, _d, f = setup
        pages = [f.allocate_page() for _ in range(3)]   # extent 1
        for _ in range(8):
            f.allocate_page()
        late = f.allocate_page()                         # later extent
        f.flush_pages_sequential([(pages[0], "a"), (pages[1], "b"),
                                  (late, "z")])
        assert f.physical_writes == 2
