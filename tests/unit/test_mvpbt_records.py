"""Unit tests for MV-PBT record types (paper §4.1)."""

from repro.core.records import (FLAG_GC, MVPBTRecord, RecordType,
                                ReferenceMode, record_size)
from repro.storage.recordid import RecordID


def regular(key=(7,), ts=1, seq=0, vid=1, rid=RecordID(0, 0)):
    return MVPBTRecord(key, ts, seq, RecordType.REGULAR, vid, rid_new=rid)


class TestMatterSemantics:
    def test_regular_is_pure_matter(self):
        r = regular()
        assert r.has_matter and not r.has_antimatter

    def test_replacement_is_both(self):
        r = MVPBTRecord((7,), 2, 1, RecordType.REPLACEMENT, 1,
                        rid_new=RecordID(0, 1), rid_old=RecordID(0, 0))
        assert r.has_matter and r.has_antimatter

    def test_anti_is_pure_antimatter(self):
        r = MVPBTRecord((7,), 2, 1, RecordType.ANTI, 1,
                        rid_old=RecordID(0, 0))
        assert not r.has_matter and r.has_antimatter

    def test_tombstone_is_pure_antimatter(self):
        r = MVPBTRecord((7,), 2, 1, RecordType.TOMBSTONE, 1,
                        rid_old=RecordID(0, 0))
        assert not r.has_matter and r.has_antimatter

    def test_set_record_is_matter(self):
        r = MVPBTRecord((7,), 2, 1, RecordType.REGULAR_SET, -1,
                        set_entries=[(1, RecordID(0, 0), 1, 0)])
        assert r.has_matter and not r.has_antimatter


class TestIdentity:
    def test_physical_identities_are_rids(self):
        r = MVPBTRecord((7,), 2, 1, RecordType.REPLACEMENT, 9,
                        rid_new=RecordID(0, 1), rid_old=RecordID(0, 0))
        assert r.matter_id(ReferenceMode.PHYSICAL) == RecordID(0, 1)
        assert r.anti_id(ReferenceMode.PHYSICAL) == RecordID(0, 0)

    def test_logical_identities_are_vid(self):
        r = MVPBTRecord((7,), 2, 1, RecordType.REPLACEMENT, 9,
                        rid_new=RecordID(0, 1), rid_old=RecordID(0, 0))
        assert r.matter_id(ReferenceMode.LOGICAL) == 9
        assert r.anti_id(ReferenceMode.LOGICAL) == 9


class TestOrdering:
    def test_sort_key_primary_by_key(self):
        a = regular(key=(1,), ts=9)
        b = regular(key=(2,), ts=1)
        assert a.sort_key() < b.sort_key()

    def test_sort_key_secondary_newest_first(self):
        old = regular(ts=1, seq=0)
        new = regular(ts=2, seq=1)
        assert new.sort_key() < old.sort_key()

    def test_same_ts_ordered_by_seq_descending(self):
        first = regular(ts=5, seq=10)
        second = regular(ts=5, seq=11)
        assert second.sort_key() < first.sort_key()


class TestFlagsAndSize:
    def test_gc_flag(self):
        r = regular()
        assert not r.is_gc
        r.mark_gc()
        assert r.is_gc
        assert r.flags & FLAG_GC

    def test_mvpbt_records_larger_than_oblivious_entries(self):
        """Paper §5: version info makes MV-PBT records bigger."""
        from repro.index.pbt import _entry_size
        r = regular()
        assert record_size(r, ReferenceMode.PHYSICAL) > _entry_size((7,))

    def test_replacement_larger_than_regular(self):
        reg = regular()
        repl = MVPBTRecord((7,), 2, 1, RecordType.REPLACEMENT, 1,
                           rid_new=RecordID(0, 1), rid_old=RecordID(0, 0))
        assert (record_size(repl, ReferenceMode.PHYSICAL)
                > record_size(reg, ReferenceMode.PHYSICAL))

    def test_logical_mode_adds_vid_bytes(self):
        r = regular()
        assert (record_size(r, ReferenceMode.LOGICAL)
                > record_size(r, ReferenceMode.PHYSICAL))

    def test_set_record_smaller_than_individual_records(self):
        """Reconciliation's point: one key for n entries (§4.7)."""
        singles = [regular(ts=i, seq=i, vid=i, rid=RecordID(0, i))
                   for i in range(10)]
        merged = MVPBTRecord((7,), 9, 9, RecordType.REGULAR_SET, -1,
                             set_entries=[(r.vid, r.rid_new, r.ts, r.seq)
                                          for r in singles])
        total_single = sum(record_size(r, ReferenceMode.PHYSICAL)
                           for r in singles)
        assert record_size(merged, ReferenceMode.PHYSICAL) < total_single

    def test_payload_accounted(self):
        bare = regular()
        with_payload = MVPBTRecord((7,), 1, 0, RecordType.REGULAR, 1,
                                   rid_new=RecordID(0, 0), payload="x" * 100)
        assert (record_size(with_payload, ReferenceMode.PHYSICAL)
                >= record_size(bare, ReferenceMode.PHYSICAL) + 100)
