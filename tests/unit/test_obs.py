"""Unit tests for the observability layer: metrics registry, tracer,
query profiles, registry-engine invariants, disabled-mode behaviour."""

import json

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.errors import ConfigError, ObsError
from repro.obs import (COUNT_BUCKETS, LATENCY_BUCKETS_US, MetricsRegistry,
                       ObsConfig, Observability, Tracer, check_invariants)
from repro.obs.registry import (NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM,
                                Counter, Gauge, Histogram)
from repro.obs.tracing import NULL_SPAN
from repro.sim.clock import SimClock


def obs_db(**overrides):
    overrides.setdefault("buffer_pool_pages", 64)
    overrides.setdefault("partition_buffer_bytes", 2048)
    overrides.setdefault("obs", ObsConfig(enabled=True))
    db = Database(EngineConfig(**overrides))
    db.create_table("t", [("k", "int"), ("v", "int")], storage="sias")
    db.create_index("ix", "t", ["k"], kind="mvpbt")
    return db


def load_rows(db, n=120, evict_every=None):
    txn = db.begin()
    for i in range(n):
        db.insert(txn, "t", (i, i * 2))
        if evict_every and (i + 1) % evict_every == 0:
            txn.commit()
            db.catalog.index("ix").mvpbt.evict_partition()
            txn = db.begin()
    txn.commit()


# ------------------------------------------------------------------ registry


class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b.count")
        c.inc()
        c.inc(4)
        assert reg.counter_value("a.b.count") == 5
        g = reg.gauge("a.b.rate")
        g.set(0.5)
        h = reg.histogram("a.b.latency_us", LATENCY_BUCKETS_US)
        h.observe(3.0)
        h.observe(250.0)
        exported = reg.export()
        assert exported["counters"]["a.b.count"] == 5
        assert exported["gauges"]["a.b.rate"] == 0.5
        hist = exported["histograms"]["a.b.latency_us"]
        assert hist["count"] == 2
        assert hist["total"] == 253.0
        assert sum(hist["counts"]) == 2

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x.y") is reg.counter("x.y")
        assert reg.histogram("x.h", COUNT_BUCKETS) is reg.histogram(
            "x.h", COUNT_BUCKETS)

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(ObsError):
            reg.gauge("x.y")
        with pytest.raises(ObsError):
            reg.histogram("x.y", COUNT_BUCKETS)

    def test_histogram_bounds_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("x.h", (1.0, 2.0))
        with pytest.raises(ObsError):
            reg.histogram("x.h", (1.0, 3.0))

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "UpperCase", "a..b", "a.b-c", ".a", "a."):
            with pytest.raises(ObsError):
                reg.counter(bad)

    def test_histogram_bucket_boundaries(self):
        h = Histogram("h", (1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(value)
        # value <= bound lands in that bucket; beyond the last = overflow
        assert h.counts == [2, 2, 1]

    def test_histogram_nonincreasing_bounds_raise(self):
        with pytest.raises(ObsError):
            Histogram("h", (1.0, 1.0))

    def test_disabled_registry_returns_null_stubs(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a.b") is NULL_COUNTER
        assert reg.gauge("a.b") is NULL_GAUGE
        assert reg.histogram("a.b", COUNT_BUCKETS) is NULL_HISTOGRAM
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(1.0)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert reg.export() == {"counters": {}, "gauges": {},
                                "histograms": {}}

    def test_null_stubs_are_instances_of_their_kind(self):
        assert isinstance(NULL_COUNTER, Counter)
        assert isinstance(NULL_GAUGE, Gauge)
        assert isinstance(NULL_HISTOGRAM, Histogram)

    def test_to_json_is_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.counter("a.first").inc(2)
        text = reg.to_json()
        assert text.index('"a.first"') < text.index('"z.last"')
        assert json.loads(text)["counters"] == {"a.first": 2, "z.last": 1}


# -------------------------------------------------------------------- tracer


class TestTracer:
    def make(self, capacity=16):
        return Tracer(SimClock(), capacity=capacity)

    def test_span_emits_begin_end_with_duration(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("op", index="ix") as span:
            clock.advance(1.5)
            span.set(rows=3)
        begin, end = tracer.events()
        assert begin["kind"] == "B" and begin["attrs"] == {"index": "ix"}
        assert end["kind"] == "E" and end["attrs"] == {"rows": 3}
        assert end["dur"] == pytest.approx(1.5)
        assert begin["span"] == end["span"]

    def test_nesting_depth(self):
        tracer = self.make()
        with tracer.span("outer"):
            tracer.emit("point")
            with tracer.span("inner"):
                pass
        depths = [(e["name"], e["kind"], e["depth"])
                  for e in tracer.events()]
        assert depths == [("outer", "B", 1), ("point", "P", 1),
                          ("inner", "B", 2), ("inner", "E", 2),
                          ("outer", "E", 1)]

    def test_crossing_span_ends_raise(self):
        tracer = self.make()
        a = tracer.span("a")
        b = tracer.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(ObsError):
            a.__exit__(None, None, None)

    def test_error_exit_flags_end_event(self):
        tracer = self.make()
        with pytest.raises(ValueError):
            with tracer.span("op"):
                raise ValueError("boom")
        end = tracer.events()[-1]
        assert end["kind"] == "E" and end["attrs"] == {"error": True}
        assert tracer.open_spans == 0

    def test_ring_buffer_drops_oldest(self):
        tracer = self.make(capacity=4)
        for i in range(10):
            tracer.emit("e", i=i)
        events = tracer.events()
        assert len(events) == 4
        assert tracer.dropped == 6
        assert [e["attrs"]["i"] for e in events] == [6, 7, 8, 9]

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(SimClock(), enabled=False)
        assert tracer.span("op") is NULL_SPAN
        with tracer.span("op") as span:
            span.set(x=1)
        tracer.emit("p")
        assert tracer.events() == []

    def test_export_jsonl_one_sorted_line_per_event(self):
        tracer = self.make()
        tracer.emit("b", z=1, a=2)
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["attrs"] == {"a": 2, "z": 1}
        assert lines[0].index('"a"') < lines[0].index('"z"')

    def test_clear_keeps_counters_running(self):
        tracer = self.make()
        tracer.emit("a")
        tracer.clear()
        tracer.emit("b")
        assert [e["name"] for e in tracer.events()] == ["b"]
        assert tracer.events()[0]["i"] == 1  # sequence not reset


# -------------------------------------------------------------------- config


class TestObsConfig:
    def test_defaults_off(self):
        config = EngineConfig()
        assert config.obs.enabled is False
        assert Database(config).obs is None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ObsConfig(trace_capacity=0)

    def test_metrics_only_mode(self):
        obs = Observability(ObsConfig(enabled=True, tracing=False),
                            SimClock())
        assert obs.tracer.span("x") is NULL_SPAN
        obs.registry.counter("a.b").inc()
        assert obs.registry.counter_value("a.b") == 1


# ------------------------------------------------------------------ profiles


class TestProfiles:
    def test_lookup_profile(self):
        db = obs_db()
        load_rows(db, 60, evict_every=20)
        txn = db.begin()
        profile = db.explain_lookup(txn, "ix", (7,))
        txn.commit()
        assert profile["op"] == "lookup"
        assert profile["rows"] == 1
        assert profile["partitions"]["total"] == 4
        skipped = (profile["partitions"]["skipped_bloom"]
                   + profile["partitions"]["skipped_mints"]
                   + profile["partitions"]["skipped_range"])
        assert profile["partitions"]["consulted"] == 4 - skipped
        # key 7 lives in exactly one partition: bloom must rule some out
        assert skipped > 0
        assert profile["visibility"]["visible"] >= 1

    def test_scan_profile_covers_all_partitions(self):
        db = obs_db()
        load_rows(db, 60, evict_every=20)
        txn = db.begin()
        profile = db.explain_scan(txn, "ix", (0,), (60,))
        txn.commit()
        assert profile["op"] == "range_scan"
        assert profile["rows"] == 60
        assert profile["partitions"]["consulted"] == 4
        assert profile["visibility"]["checked"] >= 60
        assert profile["sim_seconds"] > 0
        assert profile["buffer"]["pages_pinned"] > 0

    def test_profile_emits_trace_event(self):
        db = obs_db()
        load_rows(db, 10)
        txn = db.begin()
        db.explain_lookup(txn, "ix", (1,))
        txn.commit()
        names = [e["name"] for e in db.obs.tracer.events()]
        assert "query.profile" in names

    def test_explain_requires_obs(self):
        db = Database(EngineConfig())
        db.create_table("t", [("k", "int")], storage="sias")
        db.create_index("ix", "t", ["k"], kind="mvpbt")
        txn = db.begin()
        with pytest.raises(ConfigError):
            db.explain_lookup(txn, "ix", (1,))
        with pytest.raises(ConfigError):
            db.metrics_snapshot()
        txn.commit()


# ---------------------------------------------------------------- invariants


class TestInvariants:
    def test_clean_workload_has_no_violations(self):
        db = obs_db()
        load_rows(db, 150, evict_every=40)
        txn = db.begin()
        db.range_select(txn, "ix", None, None)
        db.select(txn, "ix", (3,))
        txn.commit()
        assert check_invariants(db) == []

    def test_disabled_db_reports_why(self):
        db = Database(EngineConfig())
        problems = check_invariants(db)
        assert problems and "disabled" in problems[0]

    def test_tampering_is_detected(self):
        db = obs_db()
        load_rows(db, 20)
        db.obs.registry.counter("txn.commit.count").inc(5)
        assert any("txn.commit.count" in p for p in check_invariants(db))

    def test_metrics_snapshot_syncs_gauges(self):
        db = obs_db()
        load_rows(db, 50, evict_every=20)
        snap = db.metrics_snapshot()
        assert snap["gauges"]["mvpbt.partitions"] == float(
            db.catalog.index("ix").mvpbt.partition_count)
        assert snap["gauges"]["sim.clock.seconds"] == db.clock.now
        assert 0.0 <= snap["gauges"]["buffer.pool.hit_rate"] <= 1.0


# ------------------------------------------------------------ device mirror


class TestDeviceMirror:
    def test_device_counters_match_device_stats(self):
        db = obs_db()
        load_rows(db, 100, evict_every=25)
        stats = db.device.stats
        cv = db.obs.registry.counter_value
        assert cv("device.bytes_written") == stats.bytes_written
        assert cv("device.bytes_read") == stats.bytes_read
        assert cv("device.reads") == stats.seq_reads + stats.rand_reads
        assert cv("device.writes") == stats.seq_writes + stats.rand_writes

    def test_mirror_independent_of_iotrace_capture_flag(self):
        db = obs_db()
        assert not db.trace.enabled  # capture off, listener still fires
        load_rows(db, 60, evict_every=20)
        assert db.obs.registry.counter_value("device.writes") > 0
        assert len(db.trace) == 0
