"""Lockset race detector + interleaving fuzzer (repro.obs.race, §17.4).

The Eraser lockset algorithm is *schedule-insensitive*: sequential
accesses from two threads are enough to indict an unlocked field, so
every race assertion here is deterministic — no timing, no luck.  The
perturber tests pin the seeded decision stream instead of any actual
interleaving.
"""

import threading

import pytest

from repro.errors import ConcurrencyError
from repro.obs.race import RaceDetector, RaceReport, SchedulePerturber
from repro.serve.locks import (
    RANK_TXN_MANAGER,
    RANK_TXN_COMMITLOG,
    OrderedLock,
)

pytestmark = pytest.mark.concurrency


def run_in_thread(fn, name="worker"):
    """Run ``fn`` to completion on a fresh thread (distinct ident)."""
    failures = []

    def trampoline():
        try:
            fn()
        except BaseException as exc:   # surfaced in the test thread
            failures.append(exc)

    t = threading.Thread(target=trampoline, name=name)
    t.start()
    t.join()
    if failures:
        raise failures[0]


class TestRaceDetector:
    def test_unlocked_shared_write_is_a_race(self):
        with RaceDetector() as det:
            det.register_field("counter")
            det.write("counter")
            run_in_thread(lambda: det.write("counter"))
        races = det.races()
        assert len(races) == 1
        assert races[0].field == "counter"
        assert races[0].thread == "worker"

    def test_consistently_locked_field_is_clean(self):
        guard = OrderedLock("race.guard", RANK_TXN_MANAGER)
        with RaceDetector() as det:
            det.register_field("counter")
            with guard:
                det.write("counter")

            def locked_write():
                with guard:
                    det.write("counter")

            run_in_thread(locked_write)
            run_in_thread(locked_write, name="worker-2")
        assert det.races() == []

    def test_inconsistent_locking_is_a_race(self):
        # two locks, never the same one across threads: candidate set
        # starts as {a}, intersects with {b} -> empty -> race
        lock_a = OrderedLock("race.a", RANK_TXN_MANAGER)
        lock_b = OrderedLock("race.b", RANK_TXN_COMMITLOG)
        with RaceDetector() as det:
            det.register_field("counter")
            with lock_a:
                det.write("counter")

            def other_lock_write():
                with lock_b:
                    det.write("counter")

            run_in_thread(other_lock_write)
            run_in_thread(other_lock_write, name="worker-2")
        races = det.races()
        assert len(races) == 1
        assert races[0].lockset == ("race.b",)

    def test_read_only_sharing_is_clean(self):
        # one writer then many readers never reaches SHARED_MODIFIED
        with RaceDetector() as det:
            det.register_field("config")
            det.write("config")
            run_in_thread(lambda: det.read("config"))
            run_in_thread(lambda: det.read("config"), name="worker-2")
        assert det.races() == []

    def test_single_thread_needs_no_locks(self):
        with RaceDetector() as det:
            det.register_field("scratch")
            for _ in range(5):
                det.write("scratch")
                det.read("scratch")
        assert det.races() == []

    def test_each_field_reported_once(self):
        with RaceDetector() as det:
            det.register_field("counter")
            det.write("counter")
            run_in_thread(lambda: det.write("counter"))
            run_in_thread(lambda: det.write("counter"), name="worker-2")
            run_in_thread(lambda: det.write("counter"), name="worker-3")
        assert len(det.races()) == 1

    def test_unregistered_field_raises(self):
        with RaceDetector() as det:
            with pytest.raises(ConcurrencyError, match="never registered"):
                det.write("ghost")

    def test_check_raises_with_field_and_threads(self):
        with RaceDetector() as det:
            det.register_field("counter")
            det.write("counter")
            run_in_thread(lambda: det.write("counter"))
            with pytest.raises(ConcurrencyError) as excinfo:
                det.check()
        message = str(excinfo.value)
        assert "data race on 'counter'" in message
        assert "'worker'" in message

    def test_report_format_lists_lockset(self):
        report = RaceReport(field="f", access="write", thread="t1",
                            first_thread="t0",
                            lockset=("serve.a", "serve.b"))
        assert "serve.a, serve.b" in report.format()
        bare = RaceReport(field="f", access="read", thread="t1",
                          first_thread="t0", lockset=())
        assert "no locks" in bare.format()

    def test_uninstalled_detector_sees_no_lock_events(self):
        guard = OrderedLock("race.guard", RANK_TXN_MANAGER)
        det = RaceDetector()     # never installed
        det.register_field("counter")
        with guard:
            det.write("counter")

        def locked_write():
            with guard:
                det.write("counter")

        run_in_thread(locked_write)
        run_in_thread(locked_write, name="worker-2")
        # without the listener hook the locksets look empty -> race;
        # proves install() is what feeds the candidate sets
        assert len(det.races()) == 1


class TestSeededRaceUnderFuzzer:
    def test_seeded_racy_increment_is_caught(self):
        """The acceptance fixture: a deliberately unsynchronized
        read-modify-write on shared state, run under the interleaving
        fuzzer, is reported as a race."""
        box = {"value": 0}
        token = OrderedLock("race.token", RANK_TXN_MANAGER)
        with SchedulePerturber(seed=7, max_pause_s=0.0005):
            with RaceDetector() as det:
                det.register_field("box.value")

                def unsynchronized_increments():
                    for _ in range(20):
                        # touch *a* lock so the fuzzer has boundaries,
                        # but leave the increment itself unguarded
                        with token:
                            pass
                        det.read("box.value")
                        value = box["value"]
                        det.write("box.value")
                        box["value"] = value + 1

                threads = [threading.Thread(target=unsynchronized_increments,
                                            name=f"racer-{i}")
                           for i in range(2)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                races = det.races()
        assert len(races) == 1
        assert races[0].field == "box.value"
        with pytest.raises(ConcurrencyError, match="box.value"):
            det.check()


class TestSchedulePerturber:
    def test_decision_stream_is_deterministic(self):
        def drive(perturber, events=200):
            for _ in range(events):
                perturber.acquired(10, "x")
                perturber.released(10, "x")
            return (perturber.boundaries, perturber.yields)

        first = drive(SchedulePerturber(seed=42, max_pause_s=0.0))
        second = drive(SchedulePerturber(seed=42, max_pause_s=0.0))
        assert first == second
        assert first[0] == 400
        assert 0 < first[1] < 400    # some, not all, boundaries yield

    def test_different_seeds_differ(self):
        def decisions(seed):
            perturber = SchedulePerturber(seed=seed, max_pause_s=0.0)
            for _ in range(100):
                perturber.acquired(10, "x")
            return perturber.yields

        assert decisions(1) != decisions(2) or decisions(1) > 0

    def test_hooks_lock_boundaries_when_installed(self):
        lock = OrderedLock("race.fuzzed", RANK_TXN_MANAGER)
        with SchedulePerturber(seed=3, max_pause_s=0.0) as perturber:
            with lock:
                pass
            assert perturber.boundaries == 2    # acquire + release
        with lock:
            pass
        assert perturber.boundaries == 2        # uninstalled: no growth

    def test_install_is_idempotent(self):
        perturber = SchedulePerturber(seed=0, max_pause_s=0.0)
        try:
            perturber.install()
            perturber.install()
            lock = OrderedLock("race.once", RANK_TXN_MANAGER)
            with lock:
                pass
            assert perturber.boundaries == 2    # listener added once
        finally:
            perturber.uninstall()
            perturber.uninstall()               # second uninstall: no-op
