"""Unit tests for the MV-PBT on-disk record format."""

import pytest

from repro.core.records import MVPBTRecord, RecordType
from repro.core.serialization import (decode_leaf, decode_leaf_batch,
                                      decode_record, encode_leaf,
                                      encode_leaf_batch, encode_record)
from repro.errors import StorageError
from repro.storage.recordid import RecordID


def roundtrip(record, partition_no=3):
    decoded, consumed = decode_record(encode_record(record, partition_no))
    assert consumed == len(encode_record(record, partition_no))
    return decoded


class TestRecordRoundtrip:
    def test_regular(self):
        r = MVPBTRecord((7, "abc"), 12, 34, RecordType.REGULAR, 9,
                        rid_new=RecordID(5, 6))
        d = roundtrip(r)
        assert (d.key, d.ts, d.seq, d.rtype, d.vid, d.rid_new, d.rid_old) \
            == ((7, "abc"), 12, 34, RecordType.REGULAR, 9, RecordID(5, 6),
                None)

    def test_replacement(self):
        r = MVPBTRecord((1,), 2, 3, RecordType.REPLACEMENT, 4,
                        rid_new=RecordID(1, 2), rid_old=RecordID(3, 4))
        d = roundtrip(r)
        assert d.rid_new == RecordID(1, 2)
        assert d.rid_old == RecordID(3, 4)

    def test_anti_and_tombstone(self):
        for rtype in (RecordType.ANTI, RecordType.TOMBSTONE):
            r = MVPBTRecord((1,), 2, 3, rtype, 4, rid_old=RecordID(3, 4))
            d = roundtrip(r)
            assert d.rtype is rtype
            assert d.rid_new is None

    def test_payload(self):
        r = MVPBTRecord(("k",), 1, 2, RecordType.REGULAR, 3,
                        rid_new=RecordID(0, 0), payload="hello wörld")
        assert roundtrip(r).payload == "hello wörld"

    def test_flags_preserved(self):
        r = MVPBTRecord((1,), 2, 3, RecordType.REGULAR, 4,
                        rid_new=RecordID(0, 0))
        r.mark_gc()
        assert roundtrip(r).is_gc

    def test_set_record(self):
        entries = [(i, RecordID(0, i), 10 + i, 20 + i) for i in range(5)]
        r = MVPBTRecord((7,), 14, 24, RecordType.REGULAR_SET, -1,
                        set_entries=entries)
        d = roundtrip(r)
        assert d.rtype is RecordType.REGULAR_SET
        assert d.set_entries == entries
        assert d.vid == -1

    def test_composite_keys(self):
        r = MVPBTRecord((1, "x", 2.5, None), 1, 2, RecordType.REGULAR, 3,
                        rid_new=RecordID(0, 0))
        assert roundtrip(r).key == (1, "x", 2.5, None)

    def test_large_timestamps(self):
        r = MVPBTRecord((1,), (1 << 48) - 1, (1 << 48) - 1,
                        RecordType.REGULAR, (1 << 48) - 1,
                        rid_new=RecordID(0, 0))
        d = roundtrip(r)
        assert d.ts == (1 << 48) - 1
        assert d.seq == (1 << 48) - 1

    def test_timestamp_overflow_rejected(self):
        r = MVPBTRecord((1,), 1 << 48, 0, RecordType.REGULAR, 1,
                        rid_new=RecordID(0, 0))
        with pytest.raises(StorageError):
            encode_record(r)


class TestLeafRoundtrip:
    def test_leaf_with_mixed_records(self):
        records = [
            MVPBTRecord((1,), 4, 4, RecordType.TOMBSTONE, 1,
                        rid_old=RecordID(0, 2)),
            MVPBTRecord((1,), 3, 3, RecordType.REPLACEMENT, 1,
                        rid_new=RecordID(0, 2), rid_old=RecordID(0, 1)),
            MVPBTRecord((7,), 1, 1, RecordType.REGULAR, 2,
                        rid_new=RecordID(0, 9), payload="v"),
        ]
        decoded = decode_leaf(encode_leaf(records, partition_no=2))
        assert len(decoded) == 3
        assert [d.rtype for d in decoded] == [r.rtype for r in records]
        assert [d.key for d in decoded] == [r.key for r in records]

    def test_empty_leaf(self):
        assert decode_leaf(encode_leaf([])) == []

    def test_corrupt_data_raises(self):
        with pytest.raises(StorageError):
            decode_record(b"\xff\x00\x00\x01")

    def test_truncated_key_reports_context(self):
        """Regression: truncation used to raise a bare ValueError whose
        context was swallowed by the generic corrupt-record wrapper."""
        blob = encode_record(MVPBTRecord((7, "abc"), 1, 1,
                                         RecordType.REGULAR, 2,
                                         rid_new=RecordID(0, 0)))
        with pytest.raises(StorageError, match="truncated key"):
            decode_record(blob[:-1])

    def test_truncated_payload_reports_context(self):
        from repro.core.serialization import _U32
        r = MVPBTRecord((1,), 1, 1, RecordType.REGULAR, 2,
                        rid_new=RecordID(0, 0), payload="hello")
        blob = encode_record(r)
        needle = _U32.pack(5) + b"hello"
        assert needle in blob
        corrupt = blob.replace(needle, _U32.pack(500) + b"hello")
        with pytest.raises(StorageError, match="truncated payload"):
            decode_record(corrupt)

    def test_corruption_is_catchable_as_repro_error(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            decode_record(b"\xff\x00\x00\x01")

    def test_encoded_size_close_to_accounted(self):
        """The cost model's accounted sizes approximate the wire format."""
        from repro.core.records import ReferenceMode, record_size
        r = MVPBTRecord((123456, "customer"), 99, 1, RecordType.REPLACEMENT,
                        7, rid_new=RecordID(10, 2), rid_old=RecordID(9, 1))
        wire = len(encode_record(r))
        accounted = record_size(r, ReferenceMode.PHYSICAL)
        assert abs(wire - accounted) <= 16


class TestLeafBatchV2:
    """The v2 columnar batch codec (batched scan pipeline wire format)."""

    def _records(self, n=20):
        return [
            MVPBTRecord((f"user{i:04d}", i), 10 + i, i, RecordType.REGULAR,
                        i + 1, rid_new=RecordID(1, i), payload=f"v{i}")
            for i in range(n)
        ]

    def test_roundtrip_matches_v1(self):
        records = self._records()
        records.append(MVPBTRecord(
            ("user9998",), 99, 99, RecordType.REGULAR_SET, -1,
            set_entries=[(1, RecordID(2, 3), 77, 5),
                         (2, RecordID(4, 5), 78, 6)]))
        records.append(MVPBTRecord(
            ("user9999",), 50, 51, RecordType.TOMBSTONE, 9, flags=1,
            rid_old=RecordID(7, 8)))
        batch = decode_leaf_batch(encode_leaf_batch(records, partition_no=3))
        assert batch.to_records() == records
        assert batch.to_records() == decode_leaf(
            encode_leaf(records, partition_no=3))

    def test_shared_prefix_nonzero_on_sequential_keys(self):
        records = self._records()
        batch = decode_leaf_batch(encode_leaf_batch(records))
        assert len(batch.prefix) > 0
        # prefix compression must make the v2 image smaller than v1
        assert len(encode_leaf_batch(records)) < len(encode_leaf(records))

    def test_prefix_correct_on_unsorted_keys(self):
        """The prefix is the common prefix of ALL keys, not just
        first/last — unsorted input must not corrupt middle keys."""
        records = [
            MVPBTRecord(("aaa",), 1, 0, RecordType.REGULAR, 1,
                        rid_new=RecordID(0, 0)),
            MVPBTRecord(("zzz",), 2, 1, RecordType.REGULAR, 2,
                        rid_new=RecordID(0, 1)),
            MVPBTRecord(("aab",), 3, 2, RecordType.REGULAR, 3,
                        rid_new=RecordID(0, 2)),
        ]
        batch = decode_leaf_batch(encode_leaf_batch(records))
        assert batch.to_records() == records

    def test_payload_view_is_zero_copy(self):
        records = self._records(4)
        blob = encode_leaf_batch(records)
        batch = decode_leaf_batch(blob)
        view = batch.payload_view(2)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"v2"
        # the view aliases the encoded image, not a copy
        base = memoryview(blob)
        assert view.obj is base.obj

    def test_payload_view_absent_is_none(self):
        record = MVPBTRecord((1,), 2, 3, RecordType.ANTI, 4,
                             rid_old=RecordID(0, 0))
        batch = decode_leaf_batch(encode_leaf_batch([record]))
        assert batch.payload_view(0) is None

    def test_empty_batch(self):
        batch = decode_leaf_batch(encode_leaf_batch([]))
        assert len(batch) == 0
        assert batch.to_records() == []

    def test_keys_column(self):
        records = self._records(8)
        batch = decode_leaf_batch(encode_leaf_batch(records))
        assert batch.keys() == [r.key for r in records]

    def test_bad_version_raises(self):
        blob = bytearray(encode_leaf_batch(self._records(2)))
        blob[0] = 9
        with pytest.raises(StorageError):
            decode_leaf_batch(bytes(blob))

    def test_truncated_raises_typed(self):
        blob = encode_leaf_batch(self._records(6))
        with pytest.raises(StorageError):
            decode_leaf_batch(blob[:len(blob) // 2])

    def test_decode_accepts_memoryview(self):
        records = self._records(3)
        blob = encode_leaf_batch(records)
        batch = decode_leaf_batch(memoryview(blob))
        assert batch.to_records() == records
