"""Unit tests for the simulated clock."""

import pytest

from repro.errors import ConfigError
from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == 3.0

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ConfigError):
            clock.advance(-0.1)

    def test_elapsed_since(self):
        clock = SimClock()
        t0 = clock.now
        clock.advance(2.5)
        assert clock.elapsed_since(t0) == 2.5

    def test_repr_shows_time(self):
        assert "SimClock" in repr(SimClock())
