"""Unit tests for on-line partition merge and bulk load (paper §4 extras)."""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.tree import MVPBT
from repro.errors import IndexError_
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import INTEL_DC_P3600
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(INTEL_DC_P3600, clock)
    pool = BufferPool(256)
    pb = PartitionBuffer(1 << 22)
    mgr = TransactionManager(clock)

    def make(name="m", **opts):
        return MVPBT(name, PageFile(name, device, 8192, 8), pool, pb, mgr,
                     **opts)
    return mgr, make, device


def fill_partitions(mgr, ix, partitions=4, rows_per=100, update_frac=0.5):
    rids = {}
    key = 0
    for _p in range(partitions):
        t = mgr.begin()
        for _ in range(rows_per):
            rid = RecordID(1, key % 60000)
            ix.insert(t, (key,), rid, vid=key + 1)
            rids[key] = rid
            key += 1
        # update a fraction of previously inserted keys (cross-partition
        # chains for the merge GC to collapse)
        for upd in range(0, key, max(2, int(1 / update_frac))):
            nrid = RecordID(2, upd % 60000)
            ix.update_nonkey(t, (upd,), nrid, rids[upd], vid=upd + 1)
            rids[upd] = nrid
        t.commit()
        ix.evict_partition()
    return rids, key


class TestMerge:
    def test_merge_reduces_partition_count(self, env):
        mgr, make, _d = env
        ix = make()
        fill_partitions(mgr, ix, partitions=4)
        assert len(ix.persisted_partitions) == 4
        merged = ix.merge_partitions()
        assert merged is not None
        assert len(ix.persisted_partitions) == 1
        assert ix.stats.merges == 1

    def test_merge_preserves_query_answers(self, env):
        mgr, make, _d = env
        ix = make()
        rids, key_count = fill_partitions(mgr, ix, partitions=4)
        reader_before = mgr.begin()
        expected = {k: [h.rid for h in ix.search(reader_before, (k,))]
                    for k in range(0, key_count, 7)}
        ix.merge_partitions()
        for k, rid_list in expected.items():
            assert [h.rid for h in ix.search(reader_before, (k,))] \
                == rid_list, k
        reader_before.commit()
        fresh = mgr.begin()
        for k in (0, 5, key_count - 1):
            assert [h.rid for h in fresh_hits(ix, fresh, k)] == [rids[k]], k


def fresh_hits(ix, txn, k):
    return ix.search(txn, (k,))


class TestMergeGC:
    def test_merge_collapses_cross_partition_chains(self, env):
        mgr, make, _d = env
        ix = make()
        _rids, _n = fill_partitions(mgr, ix, partitions=4, rows_per=50)
        before = sum(p.record_count for p in ix.persisted_partitions)
        merged = ix.merge_partitions()
        assert merged.record_count < before

    def test_merge_respects_active_snapshots(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (5,), RecordID(0, 0), vid=1)
        t.commit()
        ix.evict_partition()
        pinned = mgr.begin()
        t = mgr.begin()
        ix.update_nonkey(t, (5,), RecordID(0, 1), RecordID(0, 0), vid=1)
        t.commit()
        ix.evict_partition()
        ix.merge_partitions()
        assert [h.rid for h in ix.search(pinned, (5,))] == [RecordID(0, 0)]
        fresh = mgr.begin()
        assert [h.rid for h in ix.search(fresh, (5,))] == [RecordID(0, 1)]

    def test_merge_writes_sequentially_and_frees_inputs(self, env):
        mgr, make, device = env
        ix = make()
        fill_partitions(mgr, ix, partitions=3)
        pages_before = ix.file.allocated_pages
        snap = device.stats.snapshot()
        ix.merge_partitions()
        delta = device.stats.delta(snap)
        assert delta.seq_writes + delta.rand_writes >= 1
        assert ix.file.allocated_pages <= pages_before

    def test_single_partition_merge_is_noop(self, env):
        mgr, make, _d = env
        ix = make()
        fill_partitions(mgr, ix, partitions=1)
        assert ix.merge_partitions() is None
        assert ix.stats.merges == 0


class TestAutoMergePolicy:
    def test_max_partitions_bounds_partition_count(self, env):
        mgr, make, _d = env
        pb = PartitionBuffer(2 * 8192)
        ix = MVPBT("auto", PageFile("auto", _d, 8192, 8), BufferPool(128),
                   pb, mgr, max_partitions=3)
        t = mgr.begin()
        for k in range(3000):
            ix.insert(t, (k,), RecordID(1, k % 60000), vid=k + 1)
        t.commit()
        assert ix.stats.evictions > 4
        assert len(ix.persisted_partitions) <= 3
        assert ix.stats.merges >= 1
        reader = mgr.begin()
        assert len(ix.search(reader, (1500,))) == 1


class TestBulkLoad:
    def test_bulk_load_builds_partition(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        entries = [((k,), RecordID(1, k % 60000), k + 1) for k in range(500)]
        part = ix.bulk_load(t, entries)
        t.commit()
        assert part is not None
        assert ix.stats.bulk_loads == 1
        reader = mgr.begin()
        assert [h.rid for h in ix.search(reader, (123,))] \
            == [RecordID(1, 123)]
        assert len(ix.range_scan(reader, (0,), (49,))) == 50

    def test_bulk_load_sorts_input(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        entries = [((k,), RecordID(1, k % 60000), k + 1)
                   for k in (5, 1, 9, 3, 7)]
        ix.bulk_load(t, entries)
        t.commit()
        reader = mgr.begin()
        keys = [h.key[0] for h in ix.range_scan(reader, None, None)]
        assert keys == [1, 3, 5, 7, 9]

    def test_bulk_load_is_older_than_later_writes(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        ix.bulk_load(t, [((1,), RecordID(0, 0), 1)])
        t.commit()
        t2 = mgr.begin()
        ix.update_nonkey(t2, (1,), RecordID(0, 1), RecordID(0, 0), vid=1)
        t2.commit()
        reader = mgr.begin()
        assert [h.rid for h in ix.search(reader, (1,))] == [RecordID(0, 1)]

    def test_bulk_load_requires_empty_memory_partition(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        ix.insert(t, (1,), RecordID(0, 0), vid=1)
        with pytest.raises(IndexError_):
            ix.bulk_load(t, [((2,), RecordID(0, 1), 2)])

    def test_bulk_load_with_payloads(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        entries = [((k,), RecordID(0, k), k + 1) for k in range(10)]
        ix.bulk_load(t, entries, payloads=[f"v{k}" for k in range(10)])
        t.commit()
        reader = mgr.begin()
        hits = ix.search(reader, (3,))
        assert hits and hits[0].payload == "v3"

    def test_empty_bulk_load_is_noop(self, env):
        mgr, make, _d = env
        ix = make()
        t = mgr.begin()
        assert ix.bulk_load(t, []) is None
