"""Unit tests for the Database facade and executor."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import CatalogError, UniqueViolationError


@pytest.fixture
def db():
    return Database(EngineConfig(buffer_pool_pages=128))


def setup_table(db, storage="sias", kind="mvpbt", reference="physical",
                **opts):
    db.create_table("r", [("a", "int"), ("b", "str"), ("c", "float")],
                    storage=storage)
    db.create_index("idx_a", "r", ["a"], kind=kind, reference=reference,
                    **opts)
    return db


class TestDDL:
    def test_unknown_storage(self, db):
        with pytest.raises(CatalogError):
            db.create_table("t", [("a", "int")], storage="column")

    def test_unknown_index_kind(self, db):
        db.create_table("t", [("a", "int")])
        with pytest.raises(CatalogError):
            db.create_index("i", "t", ["a"], kind="hash")

    def test_index_on_unknown_column(self, db):
        db.create_table("t", [("a", "int")])
        with pytest.raises(CatalogError):
            db.create_index("i", "t", ["z"])

    def test_logical_reference_creates_indirection(self, db):
        db.create_table("t", [("a", "int")])
        db.create_index("i", "t", ["a"], kind="btree", reference="logical")
        assert db.catalog.table("t").indirection is not None

    def test_indirection_backfilled_for_existing_rows(self, db):
        db.create_table("t", [("a", "int")])
        txn = db.begin()
        db.insert(txn, "t", (1,))
        txn.commit()
        db.create_index("i", "t", ["a"], kind="btree", reference="logical")
        txn2 = db.begin()
        assert db.select(txn2, "i", (1,)) == [(1,)]


class TestDML:
    def test_insert_select(self, db):
        setup_table(db)
        t = db.begin()
        db.insert(t, "r", (1, "x", 2.5))
        t.commit()
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == [(1, "x", 2.5)]

    def test_update_by_key(self, db):
        setup_table(db)
        t = db.begin()
        db.insert(t, "r", (1, "x", 2.5))
        t.commit()
        t2 = db.begin()
        assert db.update_by_key(t2, "idx_a", (1,), {"b": "y"}) == 1
        t2.commit()
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == [(1, "y", 2.5)]

    def test_update_key_column_moves_row(self, db):
        setup_table(db)
        t = db.begin()
        db.insert(t, "r", (1, "x", 2.5))
        t.commit()
        t2 = db.begin()
        db.update_by_key(t2, "idx_a", (1,), {"a": 9})
        t2.commit()
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == []
        assert db.select(r, "idx_a", (9,)) == [(9, "x", 2.5)]

    def test_delete_by_key(self, db):
        setup_table(db)
        t = db.begin()
        db.insert(t, "r", (1, "x", 2.5))
        db.insert(t, "r", (2, "y", 0.0))
        t.commit()
        t2 = db.begin()
        assert db.delete_by_key(t2, "idx_a", (1,)) == 1
        t2.commit()
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == []
        assert db.select(r, "idx_a", (2,)) == [(2, "y", 0.0)]

    def test_update_missing_key_returns_zero(self, db):
        setup_table(db)
        t = db.begin()
        assert db.update_by_key(t, "idx_a", (404,), {"b": "z"}) == 0

    def test_multi_index_maintenance(self, db):
        setup_table(db)
        db.create_index("idx_b", "r", ["b"], kind="mvpbt")
        t = db.begin()
        db.insert(t, "r", (1, "x", 2.5))
        t.commit()
        t2 = db.begin()
        db.update_by_key(t2, "idx_a", (1,), {"b": "z"})
        t2.commit()
        r = db.begin()
        assert db.select(r, "idx_b", ("z",)) == [(1, "z", 2.5)]
        assert db.select(r, "idx_b", ("x",)) == []

    def test_unique_index_enforced_via_engine(self, db):
        setup_table(db, unique=True)
        t = db.begin()
        db.insert(t, "r", (1, "x", 0.0))
        with pytest.raises(UniqueViolationError):
            db.insert(t, "r", (1, "y", 0.0))


class TestQueries:
    def test_range_select(self, db):
        setup_table(db)
        t = db.begin()
        for i in range(20):
            db.insert(t, "r", (i, f"s{i}", float(i)))
        t.commit()
        r = db.begin()
        rows = db.range_select(r, "idx_a", (5,), (10,))
        assert [row[0] for row in rows] == list(range(5, 11))

    def test_count_range_index_only(self, db):
        setup_table(db)
        t = db.begin()
        for i in range(20):
            db.insert(t, "r", (i, "s", 0.0))
        t.commit()
        db.flush_all()
        r = db.begin()
        table_file = db.catalog.table("r").file
        reads_before = table_file.physical_reads
        assert db.count_range(r, "idx_a", None, (10,)) == 11
        # MV-PBT count is index-only: zero base-table page reads
        assert table_file.physical_reads == reads_before

    def test_count_range_btree_touches_table(self, db):
        setup_table(db, kind="btree")
        t = db.begin()
        for i in range(20):
            db.insert(t, "r", (i, "s", 0.0))
        t.commit()
        db.flush_all()
        r = db.begin()
        stats_before = db.pool.stats_for(db.catalog.table("r").file).requests
        assert db.count_range(r, "idx_a", None, (10,)) == 11
        after = db.pool.stats_for(db.catalog.table("r").file).requests
        assert after > stats_before   # candidates resolved in the base table

    def test_seq_scan(self, db):
        setup_table(db)
        t = db.begin()
        for i in range(5):
            db.insert(t, "r", (i, "s", 0.0))
        t.commit()
        r = db.begin()
        assert len(db.seq_scan(r, "r")) == 5

    def test_predicate_recheck_on_oblivious_index(self, db):
        """A version-oblivious candidate whose visible version no longer
        matches the key must be filtered out (key updated)."""
        setup_table(db, kind="pbt")
        t = db.begin()
        db.insert(t, "r", (1, "x", 0.0))
        t.commit()
        t2 = db.begin()
        db.update_by_key(t2, "idx_a", (1,), {"a": 2})
        t2.commit()
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == []
        assert db.select(r, "idx_a", (2,)) == [(2, "x", 0.0)]

    def test_snapshot_isolation_end_to_end(self, db):
        setup_table(db)
        t = db.begin()
        db.insert(t, "r", (1, "v0", 0.0))
        t.commit()
        reader = db.begin()
        t2 = db.begin()
        db.update_by_key(t2, "idx_a", (1,), {"b": "v1"})
        t2.commit()
        assert db.select(reader, "idx_a", (1,)) == [(1, "v0", 0.0)]
        fresh = db.begin()
        assert db.select(fresh, "idx_a", (1,)) == [(1, "v1", 0.0)]


class TestVacuumIntegration:
    def test_vacuum_sias_purges_index_entries(self, db):
        setup_table(db, kind="btree")
        t = db.begin()
        db.insert(t, "r", (1, "x", 0.0))
        t.commit()
        t2 = db.begin()
        db.delete_by_key(t2, "idx_a", (1,))
        t2.commit()
        result = db.vacuum("r")
        assert result.versions_removed >= 1
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == []


class TestIntrospection:
    def test_stats_snapshot(self, db):
        setup_table(db)
        t = db.begin()
        for i in range(20):
            db.insert(t, "r", (i, "x", 0.0))
        t.commit()
        r = db.begin()
        db.select(r, "idx_a", (5,))
        r.commit()
        stats = db.stats()
        assert stats["transactions"]["committed"] == 2
        assert stats["transactions"]["active"] == 0
        assert stats["sim_time_seconds"] > 0
        ix_stats = stats["indexes"]["idx_a"]
        assert ix_stats["memory_partition"]["records"] == 20
        assert ix_stats["mode"] == "physical"

    def test_describe_after_eviction(self, db):
        setup_table(db)
        t = db.begin()
        for i in range(50):
            db.insert(t, "r", (i, "x", 0.0))
        t.commit()
        ix = db.catalog.index("idx_a").mvpbt
        ix.evict_partition()
        desc = ix.describe()
        assert len(desc["persisted_partitions"]) == 1
        part = desc["persisted_partitions"][0]
        assert part["records"] == 50
        assert part["bloom_bytes"] > 0
        assert desc["memory_partition"]["records"] == 0
        assert desc["evictions"] == 1


class TestRunTransaction:
    def test_commits_on_success(self, db):
        setup_table(db)
        db.run_transaction(lambda t: db.insert(t, "r", (1, "x", 0.0)))
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == [(1, "x", 0.0)]

    def test_retries_on_conflict(self, db):
        from repro.errors import WriteConflictError
        setup_table(db)
        t = db.begin()
        db.insert(t, "r", (1, "x", 0.0))
        t.commit()
        blocker = db.begin()
        db.update_by_key(blocker, "idx_a", (1,), {"b": "theirs"})
        attempts = []

        def work(txn):
            attempts.append(txn.id)
            if len(attempts) == 1:
                blocker.commit()   # the conflict resolves before the retry
            return db.update_by_key(txn, "idx_a", (1,), {"b": "mine"})

        assert db.run_transaction(work) == 1
        assert len(attempts) == 2
        r = db.begin()
        assert db.select(r, "idx_a", (1,)) == [(1, "mine", 0.0)]

    def test_raises_after_exhausted_retries(self, db):
        from repro.errors import WriteConflictError
        setup_table(db)
        t = db.begin()
        db.insert(t, "r", (1, "x", 0.0))
        t.commit()
        blocker = db.begin()
        db.update_by_key(blocker, "idx_a", (1,), {"b": "held"})
        with pytest.raises(WriteConflictError):
            db.run_transaction(
                lambda txn: db.update_by_key(txn, "idx_a", (1,),
                                             {"b": "mine"}),
                retries=2)
        blocker.abort()

    def test_aborts_on_other_errors(self, db):
        setup_table(db)
        with pytest.raises(ValueError):
            def boom(txn):
                db.insert(txn, "r", (9, "gone", 0.0))
                raise ValueError("boom")
            db.run_transaction(boom)
        r = db.begin()
        assert db.select(r, "idx_a", (9,)) == []
