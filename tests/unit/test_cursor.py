"""Unit tests for the streaming cursor API (``MVPBT.cursor``).

The cursor is the primitive behind ``range_scan`` and ``scan_limit``: a
lazy k-way merge over all partitions on the §4.3 composite order that feeds
the §4.4 visibility cascade and yields hits in key order.
"""

import pytest

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.tree import MVPBT, SearchHit
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager


@pytest.fixture
def env():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    pool = BufferPool(128)
    pb = PartitionBuffer(1 << 22)
    mgr = TransactionManager(clock)

    def make(name="ix", **opts):
        return MVPBT(name, PageFile(name, device, 8192, 8), pool, pb, mgr,
                     **opts)
    return mgr, make


def build_multi_partition(mgr, make, n=60):
    """Three persisted partitions plus P_N, with updates and deletes."""
    ix = make()
    t = mgr.begin()
    for i in range(0, n, 2):
        ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
    t.commit()
    ix.evict_partition()
    t = mgr.begin()
    for i in range(1, n, 2):
        ix.insert(t, (i,), RecordID(2, i), vid=100 + i)
    t.commit()
    ix.evict_partition()
    t = mgr.begin()
    for i in range(0, n, 6):                   # newer versions of some keys
        ix.update_nonkey(t, (i,), RecordID(3, i), RecordID(1, i), vid=i + 1)
    t.commit()
    ix.evict_partition()
    t = mgr.begin()
    for i in range(3, n, 10):                  # deletes, still in P_N
        ix.delete(t, (i,), RecordID(2, i), vid=100 + i)
    t.commit()
    return ix


class TestCursorResults:
    def test_cursor_equals_range_scan(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        assert list(ix.cursor(reader, None, None)) \
            == ix.range_scan(reader, None, None)

    def test_yields_key_order_without_sort(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        keys = [h.key for h in ix.cursor(reader, None, None)]
        assert keys == sorted(keys)

    def test_newest_visible_version_wins_across_partitions(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        by_key = {h.key[0]: h for h in ix.cursor(reader, None, None)}
        assert by_key[0].rid == RecordID(3, 0)      # updated version
        assert by_key[2].rid == RecordID(1, 2)      # original version
        assert 3 not in by_key                      # deleted
        assert by_key[5].rid == RecordID(2, 5)

    def test_bounds_and_exclusivity(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        full = ix.range_scan(reader, (10,), (20,),
                             lo_incl=False, hi_incl=False)
        streamed = list(ix.cursor(reader, (10,), (20,),
                                  lo_incl=False, hi_incl=False))
        assert streamed == full
        assert all(10 < h.key[0] < 20 for h in streamed)

    def test_yields_search_hits(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        hit = next(ix.cursor(reader, None, None))
        assert isinstance(hit, SearchHit)


class TestCursorLaziness:
    def test_early_close_checks_fewer_records(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        before = ix.stats.records_checked
        cur = ix.cursor(reader, None, None)
        first = [next(cur) for _ in range(3)]
        cur.close()
        partial = ix.stats.records_checked - before

        before = ix.stats.records_checked
        full = ix.range_scan(reader, None, None)
        complete = ix.stats.records_checked - before

        assert [h.key for h in first] == [h.key for h in full[:3]]
        assert 0 < partial < complete

    def test_tree_usable_after_abandoned_cursor(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        cur = ix.cursor(reader, None, None)
        next(cur)
        cur.close()
        t = mgr.begin()
        ix.insert(t, (1000,), RecordID(9, 0), vid=9000)
        t.commit()
        fresh = mgr.begin()
        assert [h.key for h in ix.search(fresh, (1000,))] == [(1000,)]

    def test_scan_limit_is_cursor_prefix(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        full = ix.range_scan(reader, None, None)
        for limit in (1, 5, len(full), len(full) + 10):
            assert ix.scan_limit(reader, None, limit) == full[:limit]


class TestCursorStats:
    def test_scan_counted_once_per_drain(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        before = ix.stats.scans
        ix.range_scan(reader, None, None)
        assert ix.stats.scans == before + 1

    def test_hits_counted_once(self, env):
        """Satellite regression: ``scan_limit`` used to double-slice and the
        stats had to match — hits_returned must grow by exactly the number
        of hits handed out."""
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        before = ix.stats.hits_returned
        hits = ix.scan_limit(reader, None, 7)
        assert len(hits) == 7
        assert ix.stats.hits_returned == before + 7

    def test_abandoned_cursor_records_checked_accounted(self, env):
        mgr, make = env
        ix = build_multi_partition(mgr, make)
        reader = mgr.begin()
        before = ix.stats.records_checked
        cur = ix.cursor(reader, None, None)
        next(cur)
        cur.close()
        assert ix.stats.records_checked > before

    def test_partition_filters_applied(self, env):
        mgr, make = env
        ix = make()
        old_reader = mgr.begin()
        t = mgr.begin()
        for i in range(40):
            ix.insert(t, (i,), RecordID(1, i), vid=i + 1)
        t.commit()
        ix.evict_partition()
        # the partition postdates old_reader's snapshot: min-ts filter skips
        before = ix.stats.partitions_skipped_mints
        assert list(ix.cursor(old_reader, None, None)) == []
        assert ix.stats.partitions_skipped_mints == before + 1
        # range filter
        reader = mgr.begin()
        before = ix.stats.partitions_skipped_range
        assert list(ix.cursor(reader, (500,), (600,))) == []
        assert ix.stats.partitions_skipped_range == before + 1

    def test_prefix_bloom_gates_cursor(self, env):
        mgr, make = env
        ix = make(use_prefix_bloom=True, prefix_columns=1)
        t = mgr.begin()
        for d in (0, 2, 4):
            for o in range(20):
                ix.insert(t, (d, o), RecordID(d, o), vid=d * 100 + o + 1)
        t.commit()
        ix.evict_partition()
        reader = mgr.begin()
        assert len(list(ix.cursor(reader, (2, 0), (2, 99)))) == 20
        before = ix.stats.partitions_skipped_bloom
        assert list(ix.cursor(reader, (3, 0), (3, 99))) == []
        assert ix.stats.partitions_skipped_bloom > before


class TestAblationCursor:
    def test_version_oblivious_candidates_stream(self, env):
        mgr, make = env
        ix = make(index_only_visibility=False, enable_gc=False)
        t = mgr.begin()
        ix.insert(t, (1,), RecordID(0, 0), vid=1)
        ix.insert(t, (2,), RecordID(0, 1), vid=2)
        t.commit()
        t2 = mgr.begin()
        ix.update_nonkey(t2, (1,), RecordID(0, 2), RecordID(0, 0), vid=1)
        t2.commit()
        reader = mgr.begin()
        # both versions are candidates: no visibility check in this mode
        assert {h.rid for h in ix.cursor(reader, None, None)} \
            == {RecordID(0, 0), RecordID(0, 1), RecordID(0, 2)}
