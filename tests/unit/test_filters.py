"""Unit tests for bloom filters and prefix bloom filters."""

import random

import pytest

from repro.errors import ConfigError
from repro.index.filters import BloomFilter, PrefixBloomFilter
from repro.storage.keycodec import encode_key


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(1000, 0.02)
        keys = [encode_key((i,)) for i in range(1000)]
        for k in keys:
            bf.add(k)
        assert all(bf.may_contain(k) for k in keys)

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter(2000, 0.02)
        for i in range(2000):
            bf.add(encode_key((i,)))
        fp = sum(1 for i in range(2000, 12000)
                 if bf.may_contain(encode_key((i,))))
        assert fp / 10000 < 0.06   # generous bound over the 2% target

    def test_size_scales_with_items(self):
        small = BloomFilter(100, 0.02)
        large = BloomFilter(10000, 0.02)
        assert large.size_bytes > small.size_bytes

    def test_size_scales_with_precision(self):
        loose = BloomFilter(1000, 0.1)
        tight = BloomFilter(1000, 0.001)
        assert tight.size_bytes > loose.size_bytes

    def test_invalid_fpr_rejected(self):
        with pytest.raises(ConfigError):
            BloomFilter(100, 1.5)

    def test_effectiveness_counters(self):
        bf = BloomFilter(100, 0.02)
        bf.add(b"present")
        assert bf.query(b"present")
        bf.report_pass_outcome(True)
        assert not bf.query(b"absent-key-123456")
        stats = bf.stats
        assert stats.queries == 2
        assert stats.positives == 1
        assert stats.negatives == 1
        assert stats.negative_rate == 0.5

    def test_false_positive_counter(self):
        bf = BloomFilter(10, 0.02)
        bf.add(b"x")
        # force a reported false positive
        assert bf.query(b"x")
        bf.report_pass_outcome(False)
        assert bf.stats.false_positives == 1

    def test_zero_items_tolerated(self):
        bf = BloomFilter(0, 0.02)
        assert not bf.may_contain(b"anything")


class TestPrefixBloomFilter:
    def test_gates_by_prefix(self):
        pbf = PrefixBloomFilter(100, 0.1, prefix_columns=2)
        for o in range(50):
            pbf.add_key((1, 5, o))
        assert pbf.query_prefix((1, 5))
        assert not pbf.query_prefix((2, 9))

    def test_applicable_requires_fixed_prefix(self):
        pbf = PrefixBloomFilter(100, 0.1, prefix_columns=2)
        assert pbf.applicable((1, 5, 0), (1, 5, 99)) == (1, 5)
        assert pbf.applicable((1, 5), (1, 6)) is None
        assert pbf.applicable(None, (1, 5)) is None
        assert pbf.applicable((1,), (1, 5)) is None

    def test_invalid_prefix_columns(self):
        with pytest.raises(ConfigError):
            PrefixBloomFilter(100, 0.1, prefix_columns=0)

    def test_paper_figure13_shape(self):
        """Point filter ~2% FP; negatives dominate for absent prefixes."""
        rng = random.Random(7)
        bf = BloomFilter(5000, 0.02)
        present = set(rng.sample(range(100000), 5000))
        for k in present:
            bf.add(encode_key((k,)))
        negatives = positives = 0
        for probe in rng.sample(range(100000), 20000):
            if bf.query(encode_key((probe,))):
                bf.report_pass_outcome(probe in present)
                positives += 1
            else:
                negatives += 1
        stats = bf.stats
        assert stats.negative_rate > 0.7          # paper: 81.8% negatives
        assert stats.false_positive_rate < 0.05   # paper: 0.6% FP
