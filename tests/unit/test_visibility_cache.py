"""Tests for the visibility fast path: the CommitLog decided-txid watermark
and the per-operation ts -> visible memo of the VisibilityChecker.

The crucial correctness property: a transaction that commits *after* a
snapshot is taken must stay invisible to that snapshot even when the
commit-log watermark advances mid-operation (the memo may cache decisions
precisely because, relative to a fixed snapshot, no answer can ever flip).
"""


from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.records import MVPBTRecord, RecordType, ReferenceMode
from repro.core.tree import MVPBT
from repro.core.visibility import Visibility, VisibilityChecker
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.status import CommitLog, TxnStatus


class TestWatermark:
    def test_starts_at_one(self):
        assert CommitLog().watermark == 1

    def test_advances_over_contiguous_decisions(self):
        log = CommitLog()
        for txid in (1, 2, 3):
            log.register(txid)
        log.set_committed(1)
        assert log.watermark == 2
        log.set_aborted(2)
        assert log.watermark == 3
        log.set_committed(3)
        assert log.watermark == 4

    def test_stalls_on_in_progress_then_catches_up(self):
        log = CommitLog()
        for txid in (1, 2, 3):
            log.register(txid)
        log.set_committed(2)
        log.set_committed(3)
        assert log.watermark == 1          # txid 1 still undecided
        log.set_committed(1)
        assert log.watermark == 4          # jumps over the decided run

    def test_statuses_below_watermark_are_array_resolved(self):
        log = CommitLog()
        for txid in range(1, 6):
            log.register(txid)
            (log.set_committed if txid % 2 else log.set_aborted)(txid)
        assert log.watermark == 6
        assert log.is_committed(1) and log.is_aborted(2)
        assert log.is_decided(5) and not log.is_decided(99)
        assert log.status(4) is TxnStatus.ABORTED
        assert log.status(99) is TxnStatus.IN_PROGRESS

    def test_manager_exposes_watermark(self):
        mgr = TransactionManager()
        t1 = mgr.begin()
        t2 = mgr.begin()
        assert mgr.decided_watermark == t1.id
        t1.commit()
        assert mgr.decided_watermark == t2.id
        t2.commit()
        assert mgr.decided_watermark == mgr.next_txid

    def test_len_counts_registered(self):
        log = CommitLog()
        log.register(1)
        log.register(2)
        log.set_committed(1)
        assert len(log) == 2


class TestSnapshotFastPath:
    def test_below_xmin_resolves_by_commit_bit(self):
        log = CommitLog()
        log.register(3)
        log.set_committed(3)
        log.register(4)
        log.set_aborted(4)
        snap = Snapshot(owner=10, xmax=10, active=frozenset(), xmin=10)
        assert snap.sees_ts(3, log)
        assert not snap.sees_ts(4, log)

    def test_decision_stability(self):
        log = CommitLog()
        log.register(1)
        log.set_committed(1)
        log.register(2)                    # in progress, above watermark
        snap = Snapshot(owner=5, xmax=5, active=frozenset({2}), xmin=2)
        assert snap.decision_is_stable(1, log)    # below watermark
        assert snap.decision_is_stable(2, log)    # active: invisible forever
        assert snap.decision_is_stable(9, log)    # >= xmax: invisible forever
        log.register(3)
        assert not snap.decision_is_stable(3, log)


def _record(ts, seq=None, key=(7,), vid=1):
    return MVPBTRecord(key, ts, seq if seq is not None else ts,
                       RecordType.REGULAR, vid, rid_new=RecordID(0, ts))


class TestLateCommitStaysInvisible:
    def test_commit_mid_operation_does_not_flip_decision(self):
        """The paper's snapshot-isolation guarantee under the new cache: a
        checker observes a concurrent writer's record, the writer commits
        (advancing the watermark), and a later record of the same writer is
        checked by the *same* operation — both must be invisible."""
        mgr = TransactionManager()
        writer = mgr.begin()
        reader = mgr.begin()               # writer is active in this snapshot
        checker = VisibilityChecker(reader.snapshot, mgr.commit_log,
                                    ReferenceMode.PHYSICAL)
        assert checker.check(_record(writer.id, seq=1)) \
            is Visibility.INVISIBLE
        watermark_before = mgr.decided_watermark
        writer.commit()                    # watermark advances mid-operation
        assert mgr.decided_watermark > watermark_before
        assert checker.check(_record(writer.id, seq=2)) \
            is Visibility.INVISIBLE
        # a *new* snapshot (fresh operation) sees the committed record
        fresh = mgr.begin()
        fresh_checker = VisibilityChecker(fresh.snapshot, mgr.commit_log,
                                          ReferenceMode.PHYSICAL)
        assert fresh_checker.check(_record(writer.id, seq=3)) \
            is Visibility.VISIBLE

    def test_tree_level_late_commit(self):
        clock = SimClock()
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        mgr = TransactionManager(clock)
        ix = MVPBT("ix", PageFile("ix", device, 8192, 8), BufferPool(64),
                   PartitionBuffer(1 << 22), mgr)
        writer = mgr.begin()
        ix.insert(writer, (1,), RecordID(0, 1), vid=1)
        reader = mgr.begin()
        writer.commit()
        # committed after the reader's snapshot: must stay invisible
        assert ix.search(reader, (1,)) == []
        assert ix.range_scan(reader, None, None) == []
        fresh = mgr.begin()
        assert [h.key for h in ix.search(fresh, (1,))] == [(1,)]

    def test_memo_resolves_each_timestamp_once(self, monkeypatch):
        mgr = TransactionManager()
        t = mgr.begin()
        t.commit()
        reader = mgr.begin()
        calls = []
        real = Snapshot.sees_ts
        monkeypatch.setattr(Snapshot, "sees_ts",
                            lambda self, ts, log: (calls.append(ts),
                                                   real(self, ts, log))[1])
        checker = VisibilityChecker(reader.snapshot, mgr.commit_log,
                                    ReferenceMode.PHYSICAL)
        for seq in range(50):
            checker.check(_record(t.id, seq=seq, key=(seq,), vid=seq + 1))
        assert calls == [t.id]             # one resolution for 50 records
        assert checker.records_processed == 50


class TestAbortedStaysInvisible:
    def test_aborted_below_watermark(self):
        mgr = TransactionManager()
        writer = mgr.begin()
        writer.abort()
        reader = mgr.begin()
        checker = VisibilityChecker(reader.snapshot, mgr.commit_log,
                                    ReferenceMode.PHYSICAL)
        assert checker.check(_record(writer.id)) is Visibility.INVISIBLE
