"""Unit tests for the durability building blocks.

Covers the fault-injection device layer (:class:`FaultPlan`, crash state,
torn installs), the write-ahead log (append / replay / truncate / torn
tail), the manifest superblock (round-trip, double-buffered fallback) and
clean-restart recovery at the :class:`Database` level.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.core.records import MVPBTRecord, RecordType
from repro.durability.manifest import (IndexManifest, ManifestState,
                                       ManifestStore, PartitionMeta,
                                       decode_state, encode_state)
from repro.durability.recovery import read_durable_state
from repro.durability.wal import (KIND_COMMIT, KIND_RECORD, WriteAheadLog,
                                  parse_entries)
from repro.engine.database import Database
from repro.errors import DeviceCrashError, DeviceError, RecoveryError
from repro.sim.clock import SimClock
from repro.sim.device import SECTOR_BYTES, FaultPlan, SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile, TornPage
from repro.storage.recordid import RecordID

pytestmark = pytest.mark.crash


def make_file(device: SimulatedDevice, page_size: int = 512) -> PageFile:
    return PageFile("dura_test", device, page_size, 8)


def rec(key: int, ts: int, seq: int,
        rtype: RecordType = RecordType.REGULAR) -> MVPBTRecord:
    rid = RecordID(7, key % 50)
    if rtype in (RecordType.ANTI, RecordType.TOMBSTONE):
        return MVPBTRecord((key,), ts, seq, rtype, key, rid_old=rid)
    return MVPBTRecord((key,), ts, seq, rtype, key, rid_new=rid)


# ------------------------------------------------------------- FaultPlan

class TestFaultPlan:
    def test_validation(self) -> None:
        with pytest.raises(DeviceError):
            FaultPlan(fail_at=-1)
        with pytest.raises(DeviceError):
            FaultPlan(fail_at=0, mode="mangle")
        with pytest.raises(DeviceError):
            FaultPlan(fail_at=0, fraction=1.5)

    def test_clean_mode_persists_nothing(self) -> None:
        plan = FaultPlan(fail_at=0, mode="clean", fraction=1.0)
        assert plan.persisted_prefix(8192, write=True) == 0

    def test_reads_never_persist(self) -> None:
        plan = FaultPlan(fail_at=0, mode="torn", fraction=1.0)
        assert plan.persisted_prefix(8192, write=False) == 0

    def test_torn_rounds_to_sectors(self) -> None:
        plan = FaultPlan(fail_at=0, mode="torn", fraction=0.5)
        n = plan.persisted_prefix(8192, write=True)
        assert n == 4096
        assert plan.persisted_prefix(100, write=True) == 0  # < one sector
        odd = FaultPlan(fail_at=0, mode="torn", fraction=0.37)
        assert odd.persisted_prefix(8192, write=True) % SECTOR_BYTES == 0

    def test_partial_extent_rounds_to_pages(self) -> None:
        plan = FaultPlan(fail_at=0, mode="partial_extent", fraction=0.6,
                         granularity=8192)
        # 65536 * 0.6 = 39321.6 -> rounded down to 4 whole pages
        n = plan.persisted_prefix(8 * 8192, write=True)
        assert n == 4 * 8192


class TestDeviceCrash:
    def test_io_index_counts_completed_ios(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        device.write(0, 512)
        device.read(0, 512)
        assert device.io_count == 2

    def test_fail_at_k_allows_k_ios(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        device.set_fault_plan(FaultPlan(fail_at=2))
        device.write(0, 512)
        device.write(512, 512)
        with pytest.raises(DeviceCrashError):
            device.write(1024, 512)
        assert device.crashed
        assert device.io_count == 2

    def test_crashed_device_refuses_everything(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        device.set_fault_plan(FaultPlan(fail_at=0))
        with pytest.raises(DeviceCrashError):
            device.read(0, 512)
        with pytest.raises(DeviceCrashError):
            device.write(0, 512)
        device.reboot()
        assert not device.crashed
        device.write(0, 512)  # healthy again

    def test_bytes_persisted_carried_on_error(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        device.set_fault_plan(FaultPlan(fail_at=0, mode="torn",
                                        fraction=0.5))
        with pytest.raises(DeviceCrashError) as err:
            device.write(0, 4096)
        assert err.value.bytes_persisted == 2048


class TestTornInstall:
    def test_write_page_clean_crash_keeps_old(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        no = file.allocate_page()
        file.write_page(no, b"old" + bytes(509))
        device.set_fault_plan(FaultPlan(fail_at=device.io_count))
        with pytest.raises(DeviceCrashError):
            file.write_page(no, b"new" + bytes(509))
        assert bytes(file.peek(no)).startswith(b"old")

    def test_write_page_torn_splices_prefix(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = PageFile("t", device, 1024, 8)
        no = file.allocate_page()
        file.write_page(no, b"B" * 1024)
        device.set_fault_plan(FaultPlan(fail_at=device.io_count,
                                        mode="torn", fraction=0.5))
        with pytest.raises(DeviceCrashError):
            file.write_page(no, b"A" * 1024)
        torn = bytes(file.peek(no))
        assert torn == b"A" * 512 + b"B" * 512

    def test_object_payload_becomes_torn_marker(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = PageFile("t", device, 1024, 8)
        no = file.allocate_page()
        device.set_fault_plan(FaultPlan(fail_at=device.io_count,
                                        mode="torn", fraction=0.9))
        with pytest.raises(DeviceCrashError):
            file.write_page(no, ["not", "bytes"])
        assert isinstance(file.peek(no), TornPage)

    def test_extent_append_persists_page_prefix(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        payloads = [bytes([i]) * 512 for i in range(8)]
        device.set_fault_plan(FaultPlan(
            fail_at=device.io_count, mode="partial_extent",
            fraction=0.6, granularity=512))
        with pytest.raises(DeviceCrashError):
            file.append_extents(payloads)
        survived = [no for no in range(file.max_page_no)
                    if file.has_contents(no)]
        # 8 pages * 0.6 rounded down to page granularity = 2 full pages
        # at 4096 * 0.6 = 2457 -> 4 pages of 512
        assert survived == list(range(4))
        for no in survived:
            assert bytes(file.peek(no)) == payloads[no]


# ------------------------------------------------------------------- WAL

class TestWriteAheadLog:
    def test_round_trip(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        wal = WriteAheadLog(file)
        wal.log([("ix", rec(1, 10, 0)), ("ix", rec(2, 10, 1))],
                commit_txid=10)
        wal.log([("other", rec(3, 11, 2))], commit_txid=11)
        wal.log([], commit_txid=12)

        recovered, entries = WriteAheadLog.recover(make_file_like(file))
        kinds = [e.kind for e in entries]
        assert kinds == [KIND_RECORD, KIND_RECORD, KIND_COMMIT,
                         KIND_RECORD, KIND_COMMIT, KIND_COMMIT]
        assert [e.lsn for e in entries] == list(range(1, 7))
        assert {e.txid for e in entries if e.kind == KIND_COMMIT} \
            == {10, 11, 12}
        assert entries[0].index_name == "ix"
        assert entries[3].index_name == "other"
        assert entries[0].record == rec(1, 10, 0)
        assert recovered.end_lsn == wal.end_lsn

    def test_empty_log_call_is_noop(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        wal = WriteAheadLog(make_file(device))
        wal.log([])
        assert wal.end_lsn == 1
        assert wal.pages_written == 0

    def test_tail_page_seals_and_new_page_starts(self,
                                                 clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        wal = WriteAheadLog(file)
        for i in range(60):
            wal.log([("ix", rec(i, i + 1, i))], commit_txid=i + 1)
        assert len(wal._pages) >= 1   # at least one page sealed
        _, entries = WriteAheadLog.recover(make_file_like(file))
        assert [e.lsn for e in entries] == list(range(1, wal.end_lsn))

    def test_truncate_frees_only_covered_pages(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        wal = WriteAheadLog(file)
        for i in range(60):
            wal.log([("ix", rec(i, i + 1, i))], commit_txid=i + 1)
        sealed = list(wal._pages)
        assert sealed
        cut = sealed[len(sealed) // 2][2] + 1   # above some page's last lsn
        freed = wal.truncate_below(cut)
        assert freed >= 1
        _, entries = WriteAheadLog.recover(make_file_like(file))
        assert entries, "suffix must survive truncation"
        assert all(e.lsn >= cut or e.lsn >= entries[0].lsn
                   for e in entries)
        assert entries[-1].lsn == wal.end_lsn - 1
        # the surviving run is still LSN-contiguous
        lsns = [e.lsn for e in entries]
        assert lsns == list(range(lsns[0], lsns[-1] + 1))

    def test_torn_tail_keeps_valid_prefix(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        wal = WriteAheadLog(file)
        wal.log([("ix", rec(1, 5, 0))], commit_txid=5)
        # tear the next append halfway through its page rewrite
        device.set_fault_plan(FaultPlan(fail_at=device.io_count,
                                        mode="torn", fraction=0.2))
        with pytest.raises(DeviceCrashError):
            wal.log([("ix", rec(2, 6, 1)), ("ix", rec(3, 6, 2))],
                    commit_txid=6)
        device.reboot()
        _, entries = WriteAheadLog.recover(make_file_like(file))
        # the pre-crash prefix is intact; the torn suffix is dropped at an
        # entry boundary
        assert entries[0].record == rec(1, 5, 0)
        assert entries[1].kind == KIND_COMMIT and entries[1].txid == 5
        assert all(e.lsn < wal.end_lsn for e in entries)
        committed = {e.txid for e in entries if e.kind == KIND_COMMIT}
        assert 6 not in committed or len(entries) >= 5

    def test_parse_entries_rejects_garbage(self) -> None:
        assert parse_entries(b"") == []
        assert parse_entries(b"\x00" * 64) == []
        assert parse_entries(bytes(range(256)) * 4) == []


def make_file_like(file: PageFile) -> PageFile:
    """The same file, as a recovery pass would see it (identity: recovery
    re-reads the very PageFile that holds the durable contents)."""
    return file


# -------------------------------------------------------------- manifest

def sample_state() -> ManifestState:
    part = PartitionMeta(
        number=3, record_count=120, size_bytes=4096, min_ts=5, max_ts=44,
        page_nos=[4, 5, 6], fences=[(10,), (20,), (999,)],
        min_key=(1,), max_key=(999,),
        bloom_state=(256, 3, 120, bytes(32)),
        prefix_state=(1, (128, 2, 120, bytes(16))))
    bare = PartitionMeta(
        number=4, record_count=1, size_bytes=64, min_ts=50, max_ts=50,
        page_nos=[9], fences=[(7, "b")], min_key=None, max_key=None)
    return ManifestState(
        txid_watermark=77, aborted_txids=[3, 9], active_txids=[76],
        indexes={"ix": IndexManifest("ix", 5, 400, 12, [part, bare]),
                 "empty": IndexManifest("empty", 0, 0, 1, [])})


class TestManifest:
    def test_state_round_trip(self) -> None:
        state = sample_state()
        decoded = decode_state(encode_state(state))
        assert decoded == state

    def test_decode_rejects_corruption(self) -> None:
        data = bytearray(encode_state(sample_state()))
        data[0] ^= 0xFF
        with pytest.raises(RecoveryError):
            decode_state(bytes(data))
        with pytest.raises(RecoveryError):
            decode_state(encode_state(sample_state())[:-10])

    def test_store_flip_and_attach(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        store = ManifestStore(file, slot_pages=6)
        store.preallocate()
        state = sample_state()
        store.write(state)
        store.write(ManifestState(txid_watermark=99))

        attached, read_back = ManifestStore.attach(file, slot_pages=6)
        assert attached.epoch == 2
        assert read_back == ManifestState(txid_watermark=99)

    def test_attach_empty_device(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        store, state = ManifestStore.attach(make_file(device), slot_pages=4)
        assert state is None
        assert store.epoch == 0

    def test_torn_flip_falls_back_to_previous_epoch(self,
                                                    clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        file = make_file(device)
        store = ManifestStore(file, slot_pages=6)
        store.preallocate()
        store.write(ManifestState(txid_watermark=10))
        first_epoch_io = device.io_count
        # epoch 2 targets the other slot; tear its first page
        device.set_fault_plan(FaultPlan(fail_at=first_epoch_io,
                                        mode="torn", fraction=0.3))
        with pytest.raises(DeviceCrashError):
            store.write(sample_state())
        device.reboot()
        _, state = ManifestStore.attach(file, slot_pages=6)
        assert state == ManifestState(txid_watermark=10)

    def test_oversized_state_raises(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        store = ManifestStore(make_file(device), slot_pages=1)
        store.preallocate()
        big = ManifestState(txid_watermark=1,
                            aborted_txids=list(range(1000)))
        with pytest.raises(Exception):
            store.write(big)


# ------------------------------------------------------- end-to-end units

def durable_db(**extra) -> Database:
    config = EngineConfig(durability=True, page_size=512,
                          partition_buffer_bytes=1024,
                          buffer_pool_pages=64, manifest_slot_pages=6)
    db = Database(config)
    db.create_table("t", [("id", "int"), ("val", "str")])
    db.create_index("ix", "t", ["id"], kind="mvpbt", enable_gc=False,
                    **extra)
    return db


class TestDatabaseRecovery:
    def test_clean_restart_round_trip(self) -> None:
        db = durable_db()
        for i in range(40):
            txn = db.begin()
            db.insert(txn, "t", (i, f"v{i}"))
            txn.commit()
        tree = db.catalog.index("ix").mvpbt
        assert tree.stats.evictions >= 1

        db2 = Database.recover(db)
        tree2 = db2.catalog.index("ix").mvpbt
        assert len(tree2._persisted) == len(tree._persisted)
        txn = db2.begin()
        for i in range(40):
            assert db2.select(txn, "ix", (i,)) == [(i, f"v{i}")]
        txn.abort()

    def test_partitions_reattach_without_leaf_reads(self) -> None:
        db = durable_db()
        for i in range(40):
            txn = db.begin()
            db.insert(txn, "t", (i, f"v{i}"))
            txn.commit()
        index_file = db.catalog.index("ix").mvpbt.file
        reads_before = index_file.physical_reads
        Database.recover(db)
        assert index_file.physical_reads == reads_before

    def test_recovered_filters_match(self) -> None:
        db = durable_db()
        for i in range(40):
            txn = db.begin()
            db.insert(txn, "t", (i, f"v{i}"))
            txn.commit()
        old = db.catalog.index("ix").mvpbt
        db2 = Database.recover(db)
        new = db2.catalog.index("ix").mvpbt
        for p_old, p_new in zip(old._persisted, new._persisted):
            assert p_new.number == p_old.number
            assert p_new.min_ts == p_old.min_ts
            assert p_new.max_ts == p_old.max_ts
            if p_old.bloom is not None:
                assert p_new.bloom is not None
                assert p_new.bloom._bits == p_old.bloom._bits

    def test_uncommitted_txn_recovers_as_aborted(self) -> None:
        db = durable_db()
        txn = db.begin()
        db.insert(txn, "t", (1, "committed"))
        txn.commit()
        open_txn = db.begin()
        db.insert(open_txn, "t", (2, "dirty"))
        # crash with open_txn still active (no commit marker written)
        db.device.set_fault_plan(FaultPlan(fail_at=db.device.io_count))
        db2 = Database.recover(db)
        from repro.txn.status import TxnStatus
        assert db2.txn.status_of(open_txn.id) is TxnStatus.ABORTED
        check = db2.begin()
        assert db2.select(check, "ix", (1,)) == [(1, "committed")]
        assert db2.select(check, "ix", (2,)) == []
        check.abort()

    def test_recover_requires_durability(self) -> None:
        db = Database(EngineConfig())
        with pytest.raises(RecoveryError):
            Database.recover(db)

    def test_wal_truncation_bounds_log_size(self) -> None:
        db = durable_db()
        for i in range(200):
            txn = db.begin()
            db.insert(txn, "t", (i, f"v{i}"))
            txn.commit()
        wal = db.durability.wal
        assert wal.pages_freed > 0
        live_pages = len(wal._pages) + (1 if wal._tail_no is not None else 0)
        # the live log covers roughly one partition buffer's worth of
        # records, not the whole history
        assert live_pages * 512 < 200 * 20

    def test_read_durable_state_empty(self, clock: SimClock) -> None:
        device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
        state = read_durable_state(make_file(device), make_file(device))
        assert state.state is None
        assert state.committed == set()
        assert state.records == {}
        assert state.next_txid == 1
