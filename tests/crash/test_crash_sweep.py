"""Crash-point sweep: kill the device at every I/O index, recover, compare.

The sweep drives the scripted harness workload (several evictions, a tiered
merge, aborts, key updates) under a :class:`FaultPlan` for every I/O index
``k`` and every fault mode, then recovers and asserts full recovery
equivalence against the oracle plus the recovery I/O-pattern invariant
(reads of manifest/WAL extents only).

By default each mode checks a sampled subset of crash points so the suite
stays fast; ``--run-crash-sweep`` makes the sweep exhaustive.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.errors import DeviceCrashError
from repro.sim.device import FaultPlan
from repro.txn.status import TxnStatus

from .harness import (SCRIPT, apply_db_op, apply_oracle_op, assert_state_equal,
                      clean_io_count, recover_and_check, run_workload)

pytestmark = pytest.mark.crash

MODES = ("clean", "torn", "partial_extent")


@pytest.fixture(scope="module")
def sweep_domain() -> int:
    """I/O count of one fault-free workload run."""
    return clean_io_count()


def _crash_points(total: int, exhaustive: bool) -> list[int]:
    if exhaustive:
        return list(range(total))
    # quick mode: a coarse stride plus both edges still crosses WAL appends,
    # evictions, the merge and manifest flips
    points = sorted(set(range(0, total, 5)) | {1, total - 1})
    return [k for k in points if 0 <= k < total]


def test_workload_exercises_the_write_path(sweep_domain: int) -> None:
    """The sweep is only meaningful if the workload evicts and merges."""
    run = run_workload()
    tree = run.db.catalog.index("ix").mvpbt
    assert tree.stats.evictions >= 2
    assert tree.stats.merges >= 1
    assert run.db.durability.manifest.flips >= 3
    assert run.db.durability.wal.entries_appended > 50
    assert sweep_domain >= 30


@pytest.mark.parametrize("mode", MODES)
def test_crash_point_sweep(mode: str, sweep_domain: int,
                           run_crash_sweep: bool) -> None:
    """Crash at I/O index k, recover, assert oracle equivalence."""
    crashes = 0
    for k in _crash_points(sweep_domain, run_crash_sweep):
        run = run_workload(FaultPlan(fail_at=k, mode=mode))
        assert run.crashed, f"fail_at={k} < clean I/O count must crash"
        crashes += 1
        recover_and_check(run, context=f"mode={mode} k={k}")
    assert crashes > 0


def test_crash_beyond_workload_never_fires(sweep_domain: int) -> None:
    run = run_workload(FaultPlan(fail_at=sweep_domain + 10))
    assert not run.crashed
    assert run.db.device.io_count == sweep_domain


def test_torn_fraction_sweep(sweep_domain: int) -> None:
    """Different torn prefixes of the same interrupted write all recover."""
    k = sweep_domain // 2
    for fraction in (0.0, 0.25, 0.5, 0.75, 0.99):
        run = run_workload(FaultPlan(fail_at=k, mode="torn",
                                     fraction=fraction))
        assert run.crashed
        recover_and_check(run, context=f"torn fraction={fraction} k={k}")


def test_double_crash_during_recovery(sweep_domain: int) -> None:
    """A crash *during* recovery's read pass is itself recoverable."""
    from repro.durability.recovery import read_durable_state

    run = run_workload(FaultPlan(fail_at=sweep_domain * 2 // 3))
    assert run.crashed
    # recovery reads the manifest slots first; kill the second read
    run.db.device.reboot()
    run.db.device.set_fault_plan(
        FaultPlan(fail_at=run.db.device.io_count + 1))
    with pytest.raises(DeviceCrashError):
        read_durable_state(run.db.manifest_file, run.db.wal_file,
                           run.db.config.manifest_slot_pages)
    # the aborted read pass wrote nothing, so a full recovery attempt
    # (which reboots again) starts from the same durable state
    recover_and_check(run, context="second recovery attempt")


def test_recovery_reads_are_sequential_dominated(sweep_domain: int) -> None:
    """Recovery touches the device with (mostly) sequential reads only."""
    run = run_workload(FaultPlan(fail_at=sweep_domain - 1))
    assert run.crashed
    db = run.db
    stats_before = (db.device.stats.seq_reads, db.device.stats.rand_reads,
                    db.device.stats.seq_writes + db.device.stats.rand_writes)
    recovered = recover_and_check(run, context="trace run")
    stats = recovered.device.stats
    seq_reads = stats.seq_reads - stats_before[0]
    rand_reads = stats.rand_reads - stats_before[1]
    writes = stats.seq_writes + stats.rand_writes - stats_before[2]
    assert writes == 0
    assert seq_reads > 0
    assert seq_reads >= rand_reads


def test_crashed_device_stays_dead_until_reboot(sweep_domain: int) -> None:
    run = run_workload(FaultPlan(fail_at=5))
    assert run.crashed
    with pytest.raises(DeviceCrashError):
        run.db.device.read(0, 512)
    with pytest.raises(DeviceCrashError):
        run.db.device.write(0, 512)
    run.db.device.reboot()
    run.db.device.read(0, 512)  # alive again


def test_recovered_database_keeps_working(sweep_domain: int) -> None:
    """Post-recovery, the database accepts the rest of the workload."""
    k = sweep_domain // 2
    run = run_workload(FaultPlan(fail_at=k))
    assert run.crashed
    db = recover_and_check(run, context=f"continue k={k}")

    # replay the not-yet-committed suffix of the script from scratch on the
    # oracle side: recompute which keys are live, then run fresh txns
    if run.inflight_txid is not None and (
            db.txn.status_of(run.inflight_txid) is TxnStatus.COMMITTED):
        state = dict(run.inflight_state)
    else:
        state = dict(run.final)
    done = len(run.history)
    commits = [ops for outcome, ops in SCRIPT if outcome == "commit"]
    for ops in commits[done:]:
        txn = db.begin()
        # an op may be illegal against the recovered state (e.g. the
        # in-flight txn already inserted the key); skip those txns
        replayable = True
        probe = dict(state)
        try:
            for op in ops:
                apply_oracle_op(probe, op)
        except AssertionError:
            replayable = False
        if not replayable:
            txn.abort()
            continue
        for op in ops:
            apply_db_op(db, txn, op)
            apply_oracle_op(state, op)
        txn.commit()
        assert_state_equal(db, txn.id, state,
                           context=f"post-recovery txid={txn.id}")

    # and it survives a second crash + recovery
    db.device.set_fault_plan(FaultPlan(fail_at=db.device.io_count + 3,
                                       mode="torn"))
    txn = db.begin()
    with pytest.raises(DeviceCrashError):
        for i in range(200, 260):
            apply_db_op(db, txn, ("insert", i, f"z{i}"))
        txn.commit()
    db2 = Database.recover(db)
    assert_state_equal(db2, db2.txn.next_txid - 1, state,
                       context="after second crash")
