"""Cross-shard crash sweeps: kill any ONE device, recover the topology,
assert all-shards-or-no-shards visibility (DESIGN.md §16.5).

The scripted harness workload (same ops as the single-node sweep) runs
through a :class:`ShardedDatabase`, so transactions routinely touch
several shards — every ``move`` and most multi-insert transactions are
cross-shard and take the two-phase marker flow.  A
:class:`~repro.sim.device.FaultPlan` kills one shard's device (or the
coordinator's) at a chosen I/O index; the sweep then recovers ALL shards
plus the coordinator and asserts:

* **atomicity** — every transaction recovers with the SAME status on
  every shard (a cross-shard commit is visible everywhere or nowhere);
* **oracle equivalence at every horizon** — each historical per-commit
  snapshot answers point lookups and the merged full scan exactly like
  the plain-Python oracle;
* **recovery I/O pattern** — recovery only READS, and only manifest/WAL
  extents (every shard's partition leaves re-attach unread — the paper's
  zero-leaf-read recovery claim, preserved under sharding).
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.errors import DeviceCrashError
from repro.shard import ShardConfig, ShardedDatabase, ShardTransaction
from repro.sim.device import FaultPlan
from repro.txn.snapshot import Snapshot
from repro.txn.status import TxnStatus
from repro.txn.transaction import Transaction

from .harness import (KEY_UNIVERSE, SCRIPT, OracleState, apply_oracle_op,
                      wal_manifest_sectors)

pytestmark = [pytest.mark.crash, pytest.mark.shard]

TABLE = "t"
INDEX = "ix"
SHARDS = 2


def make_sharded(partitioning: str = "hash") -> ShardedDatabase:
    """A durable 2-shard router sized to evict and merge constantly."""
    config = EngineConfig(
        durability=True,
        page_size=512,
        extent_pages=8,
        partition_buffer_bytes=768,
        buffer_pool_pages=64,
        manifest_slot_pages=6,
    )
    cuts = [(50,)] if partitioning == "range" else None
    sdb = ShardedDatabase(config, ShardConfig(
        shards=SHARDS, partitioning=partitioning, range_cuts=cuts,
        hash_slots=16))
    sdb.create_table(TABLE, [("id", "int"), ("val", "str")], "sias")
    sdb.create_index(INDEX, TABLE, ["id"], kind="mvpbt",
                     enable_gc=False, max_partitions=2, merge_fanout=2)
    return sdb


def apply_router_op(sdb: ShardedDatabase, txn: ShardTransaction,
                    op: tuple) -> None:
    kind = op[0]
    if kind == "insert":
        sdb.insert(txn, TABLE, (op[1], op[2]))
    elif kind == "update":
        sdb.update_by_key(txn, INDEX, (op[1],), {"val": op[2]})
    elif kind == "move":
        sdb.update_by_key(txn, INDEX, (op[1],), {"id": op[2]})
    elif kind == "delete":
        sdb.delete_by_key(txn, INDEX, (op[1],))
    else:
        raise ValueError(f"unknown op {op!r}")


class ShardedRun:
    """One (possibly crashed) sharded workload run + its oracle."""

    def __init__(self, sdb: ShardedDatabase,
                 history: list[tuple[int, OracleState]],
                 final: OracleState, crashed: bool,
                 inflight_txid: int | None,
                 inflight_state: OracleState | None) -> None:
        self.sdb = sdb
        self.history = history
        self.final = final
        self.crashed = crashed
        self.inflight_txid = inflight_txid
        self.inflight_state = inflight_state


def run_sharded(target: str | None = None, plan: FaultPlan | None = None,
                partitioning: str = "hash") -> ShardedRun:
    """Run the scripted workload; ``target`` names the device under the
    fault plan: ``"shard0"``/``"shard1"``... or ``"coord"``."""
    sdb = make_sharded(partitioning)
    if plan is not None:
        assert target is not None
        if target == "coord":
            assert sdb.coordinator_device is not None
            sdb.coordinator_device.set_fault_plan(plan)
        else:
            sdb.shards[int(target.removeprefix("shard"))].device \
                .set_fault_plan(plan)
    live: OracleState = {}
    history: list[tuple[int, OracleState]] = []
    for outcome, ops in SCRIPT:
        txn = sdb.begin()
        pending = dict(live)
        try:
            for op in ops:
                apply_router_op(sdb, txn, op)
                apply_oracle_op(pending, op)
        except DeviceCrashError:
            return ShardedRun(sdb, history, live, True, None, None)
        if outcome == "abort":
            txn.abort()
            continue
        try:
            txn.commit()
        except DeviceCrashError:
            return ShardedRun(sdb, history, live, True, txn.id, pending)
        live = pending
        history.append((txn.id, dict(live)))
    return ShardedRun(sdb, history, live, False, None, None)


# ------------------------------------------------------------- equivalence

def horizon_stxn(sdb: ShardedDatabase, horizon_txid: int
                 ) -> ShardTransaction:
    """A synthetic read-only global transaction at one snapshot horizon."""
    snap = Snapshot(owner=0, xmax=horizon_txid + 1, active=frozenset(),
                    xmin=horizon_txid + 1)
    parts = tuple(Transaction(0, snap, db.txn) for db in sdb.shards)
    return ShardTransaction(0, snap, sdb, parts)


def assert_sharded_state(sdb: ShardedDatabase, horizon_txid: int,
                         expect: OracleState, context: str = "") -> None:
    txn = horizon_stxn(sdb, horizon_txid)
    for key in KEY_UNIVERSE:
        got = sorted(sdb.select(txn, INDEX, (key,)))
        want = [(key, expect[key])] if key in expect else []
        assert got == want, (
            f"{context}: key {key} at horizon {horizon_txid}: "
            f"got {got}, want {want}")
    got_all = sorted(sdb.range_select(txn, INDEX, None, None))
    want_all = sorted((k, v) for k, v in expect.items())
    assert got_all == want_all, (
        f"{context}: full scan at horizon {horizon_txid}: "
        f"got {len(got_all)} rows, want {len(want_all)}")


def coordinator_sectors(sdb: ShardedDatabase) -> set[int]:
    sectors: set[int] = set()
    assert sdb.coordinator_file is not None
    for addr in sdb.coordinator_file._addresses.values():
        base = addr // 512
        sectors.update(range(base, base + sdb.coordinator_file.page_size
                             // 512))
    return sectors


def recover_and_check_sharded(run: ShardedRun,
                              context: str = "") -> ShardedDatabase:
    """Recover the whole topology and assert the §16.5 invariants."""
    sdb = run.sdb
    traces = [db.trace for db in sdb.shards] + [sdb.trace]
    for trace in traces:
        trace.clear()
        trace.enable()
    recovered = ShardedDatabase.recover(sdb)
    for trace in traces:
        trace.disable()

    # recovery I/O: reads only, confined to manifest/WAL (+ coordinator
    # log) extents — no shard's partition leaves are read
    for k, db in enumerate(recovered.shards):
        allowed = wal_manifest_sectors(db)
        for entry in db.trace.entries():
            assert entry.kind == "R", (
                f"{context}: shard {k} recovery wrote LBA {entry.lba}")
            covered = all(lba in allowed
                          for lba in range(entry.lba, entry.end_lba))
            assert covered, (
                f"{context}: shard {k} recovery read outside manifest/WAL "
                f"extents (LBA {entry.lba}..{entry.end_lba})")
    coord_allowed = coordinator_sectors(recovered)
    for entry in recovered.trace.entries():
        assert entry.kind == "R", (
            f"{context}: coordinator recovery wrote LBA {entry.lba}")
        assert all(lba in coord_allowed
                   for lba in range(entry.lba, entry.end_lba)), (
            f"{context}: coordinator recovery read outside its log")

    # atomicity: every historical transaction has ONE status, identical on
    # every shard — all shards or no shards
    check_txids = [txid for txid, _state in run.history]
    if run.inflight_txid is not None:
        check_txids.append(run.inflight_txid)
    for txid in check_txids:
        statuses = {db.txn.status_of(txid) for db in recovered.shards}
        assert len(statuses) == 1, (
            f"{context}: txn {txid} recovered with split statuses "
            f"{statuses} — partial cross-shard visibility")
        assert statuses <= {TxnStatus.COMMITTED, TxnStatus.ABORTED}, (
            f"{context}: txn {txid} undecided after recovery")
    for txid, _state in run.history:
        assert recovered.shards[0].txn.status_of(txid) \
            is TxnStatus.COMMITTED, (
            f"{context}: fully-acknowledged txn {txid} lost")

    # oracle equivalence at every historical commit horizon
    for txid, state in run.history:
        assert_sharded_state(recovered, txid, state,
                             context=f"{context} horizon txid={txid}")

    final = run.final
    if run.inflight_txid is not None:
        if (recovered.shards[0].txn.status_of(run.inflight_txid)
                is TxnStatus.COMMITTED):
            assert run.inflight_state is not None
            final = run.inflight_state
    horizon = max(db.txn.next_txid for db in recovered.shards) - 1
    assert_sharded_state(recovered, horizon, final,
                         context=f"{context} final horizon")
    return recovered


# ------------------------------------------------------------------ sweeps

@pytest.fixture(scope="module")
def clean_counts() -> dict[str, int]:
    """Per-device I/O counts of one fault-free sharded run."""
    run = run_sharded()
    assert not run.crashed
    counts = {f"shard{k}": db.device.io_count
              for k, db in enumerate(run.sdb.shards)}
    assert run.sdb.coordinator_device is not None
    counts["coord"] = run.sdb.coordinator_device.io_count
    return counts


def _crash_points(total: int, exhaustive: bool) -> list[int]:
    if exhaustive:
        return list(range(total))
    points = sorted(set(range(0, total, 7)) | {1, total - 1})
    return [k for k in points if 0 <= k < total]


def test_workload_is_cross_shard(clean_counts: dict[str, int]) -> None:
    """The sweep only means something if 2PC commits actually happen."""
    run = run_sharded()
    assert len(run.sdb.coordinator.decisions) >= 5, (
        "script produced too few cross-shard commits")
    for k in range(SHARDS):
        assert clean_counts[f"shard{k}"] > 10, "a shard sat idle"
    assert clean_counts["coord"] >= len(run.sdb.coordinator.decisions)


@pytest.mark.parametrize("target", ["shard0", "shard1", "coord"])
def test_shard_crash_sweep(target: str, clean_counts: dict[str, int],
                           run_crash_sweep: bool) -> None:
    """Kill one device at I/O index k; recover; assert atomicity."""
    total = clean_counts[target]
    crashes = 0
    for k in _crash_points(total, run_crash_sweep):
        run = run_sharded(target, FaultPlan(fail_at=k))
        assert run.crashed, f"{target} fail_at={k} must crash"
        crashes += 1
        recover_and_check_sharded(run, context=f"{target} k={k}")
    assert crashes > 0


def test_torn_shard_writes_recover(clean_counts: dict[str, int]) -> None:
    k = clean_counts["shard1"] // 2
    for fraction in (0.0, 0.5, 0.99):
        run = run_sharded("shard1", FaultPlan(fail_at=k, mode="torn",
                                              fraction=fraction))
        assert run.crashed
        recover_and_check_sharded(run, context=f"torn f={fraction} k={k}")


def test_range_partitioned_crash_recovers() -> None:
    """The sweep invariants hold under range partitioning too."""
    probe = run_sharded(partitioning="range")
    assert not probe.crashed
    k = probe.sdb.shards[0].device.io_count // 2
    run = run_sharded("shard0", FaultPlan(fail_at=k),
                      partitioning="range")
    assert run.crashed
    recover_and_check_sharded(run, context=f"range k={k}")


def test_crash_beyond_workload_never_fires(
        clean_counts: dict[str, int]) -> None:
    target = "shard0"
    run = run_sharded(target,
                      FaultPlan(fail_at=clean_counts[target] + 10))
    assert not run.crashed
    assert run.sdb.shards[0].device.io_count == clean_counts[target]


def test_recovered_router_keeps_working(
        clean_counts: dict[str, int]) -> None:
    """Post-recovery the router accepts new cross-shard transactions."""
    run = run_sharded("shard0",
                      FaultPlan(fail_at=clean_counts["shard0"] // 2))
    assert run.crashed
    recovered = recover_and_check_sharded(run, context="continue")
    state = dict(run.final)
    if run.inflight_txid is not None and (
            recovered.shards[0].txn.status_of(run.inflight_txid)
            is TxnStatus.COMMITTED):
        assert run.inflight_state is not None
        state = dict(run.inflight_state)
    txn = recovered.begin()
    for i in range(200, 230):
        recovered.insert(txn, TABLE, (i, f"z{i}"))
        state[i] = f"z{i}"
    txn.commit()
    assert len(txn.touched) > 1, "fresh inserts should span shards"
    assert_sharded_state(recovered, txn.id, state, context="post-recovery")


# ------------------------------------------------------- rebalance crashes

def test_rebalance_crash_sweep(run_crash_sweep: bool) -> None:
    """Kill a shard device at every sampled I/O index DURING a rebalance:
    every window recovers to the exact pre-rebalance contents (the layout
    flip decides which copies are authoritative; none are ever lost)."""
    base = run_sharded(partitioning="range")
    assert not base.crashed

    def io_now(sdb: ShardedDatabase) -> list[int]:
        return [db.device.io_count for db in sdb.shards]

    # measure a clean rebalance's extra I/O per shard
    probe = run_sharded(partitioning="range")
    before = io_now(probe.sdb)
    probe.sdb.move_range((0,), (30,), 1)
    deltas = [after - b
              for after, b in zip(io_now(probe.sdb), before)]
    assert max(deltas) > 0, "rebalance did no I/O?"

    target = max(range(SHARDS), key=lambda k: deltas[k])
    points = _crash_points(deltas[target], run_crash_sweep)
    for k in points:
        run = run_sharded(partitioning="range")
        sdb = run.sdb
        sdb.shards[target].device.set_fault_plan(
            FaultPlan(fail_at=sdb.shards[target].device.io_count + k))
        try:
            sdb.move_range((0,), (30,), 1)
        except DeviceCrashError:
            pass
        crashed_run = ShardedRun(sdb, run.history, run.final, True,
                                 None, None)
        recover_and_check_sharded(crashed_run,
                                  context=f"rebalance k={k}")
