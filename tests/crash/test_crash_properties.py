"""Property-based crash recovery: random workloads × random crash points.

Hypothesis generates small legal DML scripts (inserts, updates, key-moves,
deletes, aborts) and a fault plan; the property is the same recovery
equivalence the deterministic sweep asserts.  This explores crash/workload
interleavings the scripted sweep cannot reach — e.g. crashes landing inside
an eviction triggered by the third operation of an aborted transaction.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.device import FaultPlan

from .harness import recover_and_check, run_workload

pytestmark = pytest.mark.crash

KEYS = st.integers(min_value=0, max_value=99)


@st.composite
def scripts(draw) -> list[tuple[str, list[tuple]]]:
    """A legal workload script: ops stay valid against the oracle state."""
    script: list[tuple[str, list[tuple]]] = []
    live: set[int] = set()
    n_txns = draw(st.integers(min_value=1, max_value=8))
    for _ in range(n_txns):
        outcome = draw(st.sampled_from(["commit", "commit", "commit",
                                        "abort"]))
        pending = set(live)
        ops: list[tuple] = []
        n_ops = draw(st.integers(min_value=1, max_value=12))
        for _ in range(n_ops):
            kind = draw(st.sampled_from(["insert", "insert", "update",
                                         "move", "delete"]))
            key = draw(KEYS)
            if kind == "insert":
                if key in pending:
                    continue
                pending.add(key)
                ops.append(("insert", key, f"v{key}.{len(ops)}"))
            elif kind == "update":
                ops.append(("update", key, f"u{key}.{len(ops)}"))
            elif kind == "move":
                target = draw(KEYS)
                if key not in pending or target in pending or key == target:
                    continue
                pending.discard(key)
                pending.add(target)
                ops.append(("move", key, target))
            else:
                pending.discard(key)
                ops.append(("delete", key))
        if not ops:
            ops = [("update", draw(KEYS), "noop")]
        if outcome == "commit":
            live = pending
        script.append((outcome, ops))
    return script


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=scripts(),
       fail_at=st.integers(min_value=0, max_value=60),
       mode=st.sampled_from(["clean", "torn", "partial_extent"]),
       fraction=st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False))
def test_random_workload_random_crash_point(script, fail_at, mode,
                                            fraction) -> None:
    plan = FaultPlan(fail_at=fail_at, mode=mode, fraction=fraction)
    run = run_workload(plan, script=script)
    # a run that finished under fail_at I/Os recovers as a clean restart —
    # the equivalence obligation is identical either way
    recover_and_check(
        run, context=f"property mode={mode} k={fail_at} f={fraction:.2f}")
