"""Crash mid cross-shard NEW-ORDER: kill a device, recover the topology,
prove all-shards-or-no-shards atomicity on real TPC-C data (DESIGN.md
§18.6).

The scripted sweeps in ``test_shard_crash.py`` exercise a synthetic
key/value workload; here the SAME fault plans hit a durable 2-shard
cluster running genuine TPC-C new-orders forced cross-shard
(``remote_order_line_prob=1.0`` with warehouses on both shards), so every
crash point lands inside — or between — 2PC commits that touch district,
orders, new_order, order_line and REMOTE stock rows at once.

After recovery we assert three things:

* **status atomicity** — every transaction id issued during the run has
  ONE status, identical on every shard, and it is decided;
* **TPC-C consistency** — the recovered committed state passes the spec
  invariants (C1-C4): no half-applied new-order can survive, or C2/C3/C4
  would catch the missing order/new_order/order-line rows;
* **cross-shard ledger balance** — the stock table's total ``s_ytd``
  (updated on the *supplying* warehouse's shard) equals the total
  quantity of runtime order lines (inserted on the *home* warehouse's
  shard): a commit that reached one shard but not the other breaks the
  ledger immediately.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.errors import DeviceCrashError
from repro.shard import ShardConfig, ShardedDatabase
from repro.sim.device import FaultPlan, SimulatedDevice
from repro.txn.status import TxnStatus
from repro.workloads import (ShardedBackend, TPCCConfig, TPCCResult,
                             TPCCRunner, assert_tpcc_consistent)

pytestmark = [pytest.mark.crash, pytest.mark.shard, pytest.mark.workload]

SHARDS = 2
TARGETS = ("shard0", "shard1", "coord")

#: with 2 shards x 16 hash slots, warehouse 4 lands on shard 0 and
#: warehouses 1-3 on shard 1 — so a remote order line regularly crosses
#: the shard boundary (never use 2 warehouses here: both hash to shard 1)
CRASH_CFG = TPCCConfig(
    warehouses=4, districts_per_warehouse=1, customers_per_district=3,
    items=8, initial_orders_per_district=2,
    new_order_weight=1.0, payment_weight=0.0, order_status_weight=0.0,
    delivery_weight=0.0, stock_level_weight=0.0,
    remote_order_line_prob=1.0, seed=31)
N_TXNS = 20


def make_cluster() -> tuple[ShardedDatabase, ShardedBackend, TPCCRunner]:
    """A durable 2-shard cluster, loaded with the crash-scale TPC-C data."""
    config = EngineConfig(
        durability=True,
        page_size=512,
        extent_pages=8,
        partition_buffer_bytes=768,
        buffer_pool_pages=64,
        # nine tables + ten indexes of metadata, growing one partition
        # descriptor per eviction — size the slot for the whole run
        manifest_slot_pages=64,
    )
    router = ShardedDatabase(config, ShardConfig(shards=SHARDS,
                                                 hash_slots=16))
    backend = ShardedBackend(router)
    runner = TPCCRunner(backend, CRASH_CFG)
    runner.load()
    return router, backend, runner


def device_of(router: ShardedDatabase, target: str) -> SimulatedDevice:
    if target == "coord":
        assert router.coordinator_device is not None
        return router.coordinator_device
    return router.shards[int(target.removeprefix("shard"))].device


class WorkloadRun:
    """One (possibly crashed) TPC-C run over the durable cluster."""

    def __init__(self, router: ShardedDatabase, backend: ShardedBackend,
                 crashed: bool, start_txid: int,
                 result: TPCCResult | None) -> None:
        self.router = router
        self.backend = backend
        self.crashed = crashed
        self.start_txid = start_txid
        self.result = result


def run_new_orders(target: str | None = None, k: int = 0,
                   mode: str = "clean",
                   fraction: float = 0.5) -> WorkloadRun:
    """Load, then run N_TXNS new-orders; arm the fault plan ``k`` I/Os
    into the RUN phase of ``target``'s device (post-load, so the sweep
    indexes the interesting region, not the bulk load)."""
    router, backend, runner = make_cluster()
    if target is not None:
        device = device_of(router, target)
        device.set_fault_plan(FaultPlan(fail_at=device.io_count + k,
                                        mode=mode, fraction=fraction))
    start_txid = router.coordinator.next_txid
    crashed = False
    result: TPCCResult | None = None
    try:
        result = runner.run(N_TXNS)
    except DeviceCrashError:
        crashed = True
    return WorkloadRun(router, backend, crashed, start_txid, result)


def assert_stock_ledger_balanced(backend: ShardedBackend,
                                 context: str) -> None:
    """Cross-shard ledger: total s_ytd == total runtime order-line qty."""
    initial = CRASH_CFG.initial_orders_per_district
    lines = backend.dump_table("order_line")
    stock = backend.dump_table("stock")
    runtime_qty = sum(row[6] for row in lines if row[2] > initial)
    ytd_total = sum(row[3] for row in stock)
    assert abs(ytd_total - runtime_qty) < 1e-6, (
        f"{context}: stock s_ytd total {ytd_total} != runtime order-line "
        f"quantity {runtime_qty} — a new-order committed on one shard "
        f"but not the other")


def recover_and_check(run: WorkloadRun, context: str) -> ShardedBackend:
    """Recover every shard + the coordinator; assert the §18.6 invariants."""
    recovered = ShardedDatabase.recover(run.router)

    # status atomicity: every txid issued during the run is decided, and
    # identically so on every shard
    end_txid = max(db.txn.next_txid for db in recovered.shards)
    assert end_txid > run.start_txid, f"{context}: no transactions ran"
    for txid in range(run.start_txid, end_txid):
        statuses = {db.txn.status_of(txid) for db in recovered.shards}
        assert len(statuses) == 1, (
            f"{context}: txn {txid} recovered with split statuses "
            f"{statuses} — partial cross-shard visibility")
        assert statuses <= {TxnStatus.COMMITTED, TxnStatus.ABORTED}, (
            f"{context}: txn {txid} undecided after recovery")

    backend = ShardedBackend(recovered)
    assert_tpcc_consistent(backend, context=context)
    assert_stock_ledger_balanced(backend, context)
    return backend


def _crash_points(total: int, exhaustive: bool) -> list[int]:
    if exhaustive:
        points = set(range(0, total, 7))
    else:
        step = max(1, total // 5)
        points = set(range(0, total, step))
    points |= {1, total - 1}
    return sorted(k for k in points if 0 <= k < total)


# ------------------------------------------------------------------ sweeps

@pytest.fixture(scope="module")
def clean_run() -> dict[str, object]:
    """One fault-free run: per-device run-phase I/O counts + baselines."""
    router, backend, runner = make_cluster()
    load_io = {t: device_of(router, t).io_count for t in TARGETS}
    decisions_before = len(router.coordinator.decisions)
    start_txid = router.coordinator.next_txid
    result = runner.run(N_TXNS)
    run_io = {t: device_of(router, t).io_count - load_io[t]
              for t in TARGETS}
    info = {
        "run_io": run_io,
        "result": result,
        "decisions": len(router.coordinator.decisions) - decisions_before,
        "start_txid": start_txid,
        "backend": backend,
    }
    yield info
    backend.close()


def test_workload_reaches_both_shards(clean_run: dict[str, object]) -> None:
    """The sweep is only meaningful if new-orders really commit via 2PC."""
    result = clean_run["result"]
    assert result.committed + result.aborted == N_TXNS
    assert result.committed >= N_TXNS - 5
    assert result.by_type == {"new_order": result.committed}
    # forced remote order lines -> durable cross-shard commits logged 2PC
    # decisions with the coordinator
    assert clean_run["decisions"] > 5, (
        "new-orders did not take the durable 2PC path")
    run_io = clean_run["run_io"]
    for target in TARGETS:
        assert run_io[target] > 0, f"{target} sat idle during the run"
    assert_tpcc_consistent(clean_run["backend"], context="clean run")
    assert_stock_ledger_balanced(clean_run["backend"], "clean run")


@pytest.mark.parametrize("target", TARGETS)
def test_new_order_crash_sweep(target: str, clean_run: dict[str, object],
                               run_crash_sweep: bool) -> None:
    """Kill one device k I/Os into the run; recover; assert atomicity."""
    total = clean_run["run_io"][target]
    crashes = 0
    for k in _crash_points(total, run_crash_sweep):
        run = run_new_orders(target, k)
        assert run.crashed, f"{target} k={k} must crash mid-run"
        crashes += 1
        recover_and_check(run, context=f"{target} k={k}")
    assert crashes > 0


def test_torn_new_order_write_recovers(
        clean_run: dict[str, object]) -> None:
    """A torn sector mid new-order is discarded by recovery, atomically."""
    k = clean_run["run_io"]["shard1"] // 2
    for fraction in (0.0, 0.5, 0.99):
        run = run_new_orders("shard1", k, mode="torn", fraction=fraction)
        assert run.crashed
        recover_and_check(run, context=f"torn f={fraction} k={k}")


def test_crash_beyond_run_never_fires(
        clean_run: dict[str, object]) -> None:
    """Determinism guard: the armed-but-unfired run matches the clean one."""
    run = run_new_orders("shard0",
                         clean_run["run_io"]["shard0"] + 1000)
    assert not run.crashed
    assert run.result is not None
    baseline = clean_run["result"]
    assert run.result.committed == baseline.committed
    assert run.result.aborted == baseline.aborted
    run.backend.close()


def test_recovered_cluster_accepts_cross_shard_txns(
        clean_run: dict[str, object]) -> None:
    """Post-recovery the cluster still runs 2PC payments and stays
    consistent — recovery returns a working router, not a read replica."""
    run = run_new_orders("coord", clean_run["run_io"]["coord"] // 2)
    assert run.crashed
    backend = recover_and_check(run, context="resume")
    decisions_before = len(backend.router.coordinator.decisions)
    # a manual double-payment touching warehouse 1 (shard 1) and
    # warehouse 4 (shard 0) in ONE transaction: cross-shard by design
    txn = backend.begin()
    for w in (1, 4):
        wh = txn.select_hits("idx_warehouse", (w,))[0]
        txn.update("warehouse", wh, {"w_ytd": wh.row[2] + 50.0})
        dist = txn.select_hits("idx_district", (w, 1))[0]
        txn.update("district", dist, {"d_ytd": dist.row[3] + 50.0})
    txn.commit()
    assert len(backend.router.coordinator.decisions) > decisions_before, (
        "post-recovery payment did not take the 2PC path")
    assert_tpcc_consistent(backend, context="post-recovery")
