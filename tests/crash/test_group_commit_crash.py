"""Crash coverage for WAL group commit (DESIGN.md §15.4).

A group append writes several transactions' records plus their COMMIT
markers in ONE multi-record WAL write.  The recovery invariant under a
crash anywhere inside that append:

* **prefix** — the set of transactions that recover as committed is a
  contiguous *prefix* of the group order (markers are appended in order
  with contiguous LSNs, and replay stops at the first gap or corruption);
* **per-transaction atomicity** — each transaction is all-or-nothing:
  every record of a marker-durable transaction is replayed (records
  precede the marker), and no record of a markerless transaction becomes
  visible (it recovers as aborted);
* **no acknowledgement was lied about** — the leader flips commit status
  only after the append returns, so every transaction of a crashed group
  was still unacknowledged; recovery may commit any prefix, including
  the empty one.

The sweep is single-threaded and deterministic: it builds the same group
scenario for every crash point, drains the transactions exactly as the
serve layer's leader would, and calls
:meth:`~repro.durability.controller.DurabilityController.append_group`
directly under a :class:`FaultPlan` — the thread interleaving of the real
leader cannot change what lands on the device, because the append is one
engine-slot-confined call.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.errors import DeviceCrashError
from repro.sim.device import FaultPlan
from repro.txn.status import TxnStatus

from .harness import (INDEX, OracleState, apply_db_op, apply_oracle_op,
                      assert_state_equal, make_db)

pytestmark = pytest.mark.crash

#: the group: three transactions, drained and appended as one WAL write.
#: They run concurrently (interleaved snapshots), so each touches only
#: base-state or its own keys — classic disjoint OLTP writers.
GROUP_SPECS = [
    [("insert", 20 + i, f"g{i}") for i in range(5)],
    [("update", 3, "g3u"), ("insert", 30, "g30"), ("delete", 7)],
    [("insert", 40 + i, f"h{i}") for i in range(8)]
    + [("update", 5, "h5u")],
]

BASE_OPS = [("insert", i, f"a{i}") for i in range(10)]


class GroupScenario:
    """One deterministic build of base state + an undecided commit group."""

    def __init__(self) -> None:
        self.db = make_db()
        base: OracleState = {}
        txn = self.db.begin()
        for op in BASE_OPS:
            apply_db_op(self.db, txn, op)
            apply_oracle_op(base, op)
        txn.commit()
        self.base_txid = txn.id

        self.txns = []
        #: oracle state after committing the first i group members
        self.states: list[OracleState] = [dict(base)]
        for spec in GROUP_SPECS:
            member = self.db.begin()
            state = dict(self.states[-1])
            for op in spec:
                apply_db_op(self.db, member, op)
                apply_oracle_op(state, op)
            self.txns.append(member)
            self.states.append(state)
        # the leader's drain phase (engine-slot work, no I/O)
        self.batch = [
            (t, self.db.durability.drain_commit_records(t))
            for t in self.txns]

    def append(self) -> None:
        """The leader's group append plus the per-member status flips."""
        self.db.durability.append_group(self.batch)
        for t in self.txns:
            self.db.txn.finish_commit(t)


def _span() -> tuple[int, int]:
    """(I/Os before the append, I/Os of the append) on a clean run."""
    scenario = GroupScenario()
    before = scenario.db.device.io_count
    scenario.append()
    return before, scenario.db.device.io_count - before


def _recover_and_check(scenario: GroupScenario, context: str) -> None:
    recovered = Database.recover(scenario.db)

    statuses = [recovered.txn.status_of(t.id) for t in scenario.txns]
    for status, t in zip(statuses, scenario.txns):
        assert status in (TxnStatus.COMMITTED, TxnStatus.ABORTED), (
            f"{context}: group member {t.id} recovered undecided")
    committed = [s is TxnStatus.COMMITTED for s in statuses]
    prefix_len = sum(committed)
    assert committed == [True] * prefix_len + [False] * (
        len(committed) - prefix_len), (
        f"{context}: durable commits {committed} are not a prefix of the "
        f"group order — torn group write broke marker ordering")

    # per-transaction atomicity: the state is exactly the oracle after the
    # durable prefix — all of every committed member, none of the rest
    assert_state_equal(recovered, recovered.txn.next_txid - 1,
                       scenario.states[prefix_len],
                       context=f"{context} prefix={prefix_len}")
    # and the pre-group base state is still intact at its own horizon
    assert_state_equal(recovered, scenario.base_txid, scenario.states[0],
                       context=f"{context} base horizon")


def test_clean_group_append_commits_everything() -> None:
    scenario = GroupScenario()
    before = scenario.db.device.io_count
    scenario.append()
    # the whole group cost exactly ONE WAL append (the fsync saving)
    assert scenario.db.durability.wal.appends == 2  # base commit + group
    assert scenario.db.device.io_count > before
    txn = scenario.db.begin()
    got = sorted(scenario.db.range_select(txn, INDEX, None, None))
    assert got == sorted(scenario.states[-1].items())
    txn.abort()
    # a clean restart also replays the full group
    _recover_and_check(scenario, "clean append")


@pytest.mark.parametrize("mode", ("clean", "torn", "partial_extent"))
def test_group_append_crash_sweep(mode: str, run_crash_sweep: bool) -> None:
    """Kill the device at every I/O inside the group append; each crash
    must recover to a per-transaction-atomic prefix of the group."""
    before, span = _span()
    assert span >= 2, "group append must issue multiple I/Os to sweep"
    points = (range(span) if run_crash_sweep
              else sorted({0, 1, span // 2, span - 1}))
    outcomes = set()
    for k in points:
        scenario = GroupScenario()
        assert scenario.db.device.io_count == before, (
            "scenario build is nondeterministic; sweep domain invalid")
        scenario.db.device.set_fault_plan(
            FaultPlan(fail_at=before + k, mode=mode))
        with pytest.raises(DeviceCrashError):
            scenario.append()
        # no member may have been acknowledged before the crash
        assert all(scenario.db.txn.status_of(t.id) is TxnStatus.IN_PROGRESS
                   for t in scenario.txns), (
            f"k={k}: status flipped before the group append returned")
        _recover_and_check(scenario, f"mode={mode} k={k}")
        recovered_committed = sum(
            1 for t in scenario.txns
            if scenario.db.txn.status_of(t.id) is TxnStatus.COMMITTED)
        outcomes.add(recovered_committed)
    # the sweep must actually exercise divergent outcomes: at least one
    # crash losing the whole group, and (in the sector-persisting modes)
    # ideally a proper partial prefix
    assert 0 in outcomes, "no crash point lost the whole group"


def test_torn_tail_write_cannot_commit_partial_transaction() -> None:
    """The torn-write edge: kill the very last I/O of the append with a
    persisted sector prefix.  Whatever prefix survives, recovery must
    never expose a transaction whose marker did not make it."""
    before, span = _span()
    for fraction in (0.25, 0.5, 0.9):
        scenario = GroupScenario()
        scenario.db.device.set_fault_plan(
            FaultPlan(fail_at=before + span - 1, mode="torn",
                      fraction=fraction))
        with pytest.raises(DeviceCrashError):
            scenario.append()
        _recover_and_check(scenario, f"torn tail fraction={fraction}")
