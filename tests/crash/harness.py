"""Crash-point fault-injection harness (DESIGN.md §11.6).

The harness runs one deterministic, sequential DML workload against a
durable :class:`~repro.engine.database.Database`, maintaining a plain-Python
oracle of the committed table state after every commit.  A
:class:`~repro.sim.device.FaultPlan` kills the device at a chosen I/O
index; the harness then recovers the database and asserts **recovery
equivalence**: at every per-commit snapshot horizon the recovered MV-PBT
answers every point lookup and a full range scan exactly like the oracle —
every committed version visible, nothing uncommitted or retired resurrected
(duplicates are caught because hit lists are compared, not sets).

The only permitted divergence is the transaction in flight *inside*
``commit()`` at the crash: its COMMIT marker may or may not have become
durable before the device died, so the final horizon is checked against
both oracle states and must match the one the recovered commit log chose.

The workload is sized against the harness config (tiny partition buffer,
``max_partitions=2``) so a full run crosses several partition evictions and
at least one tiered merge — the sweep therefore hits crash points inside
extent appends, manifest flips, WAL appends and input-partition retirement.
"""

from __future__ import annotations

from typing import Any, NamedTuple, TypeAlias

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.errors import DeviceCrashError
from repro.sim.device import FaultPlan
from repro.txn.snapshot import Snapshot
from repro.txn.status import TxnStatus
from repro.txn.transaction import Transaction

#: every key any workload operation may touch (checked at every horizon)
KEY_UNIVERSE = range(0, 100)

INDEX = "ix"
TABLE = "t"


def make_db(storage: str = "sias", obs: bool = False) -> Database:
    """A durable database small enough to evict and merge constantly."""
    from repro.obs import ObsConfig
    config = EngineConfig(
        durability=True,
        page_size=512,                   # small pages: real WAL page turnover
        extent_pages=8,
        partition_buffer_bytes=768,      # ~25 records per P_N
        buffer_pool_pages=64,
        manifest_slot_pages=6,
        obs=ObsConfig(enabled=obs),
    )
    db = Database(config)
    db.create_table(TABLE, [("id", "int"), ("val", "str")], storage=storage)
    db.create_index(INDEX, TABLE, ["id"], kind="mvpbt",
                    enable_gc=False, max_partitions=2, merge_fanout=2)
    return db


# --------------------------------------------------------------- workload

#: one workload operation:
#: ("insert", id, val) / ("update", id, val) / ("move", id, new_id) /
#: ("delete", id)
Op: TypeAlias = tuple[Any, ...]
#: one transaction: ("commit" | "abort", [ops])
Script: TypeAlias = "list[tuple[str, list[Op]]]"
#: committed table state: id -> val
OracleState: TypeAlias = "dict[int, str]"

SCRIPT: Script = [
    ("commit", [("insert", i, f"a{i}") for i in range(0, 10)]),
    ("commit", [("insert", i, f"b{i}") for i in range(10, 15)]
     + [("update", 3, "b3u"), ("delete", 7)]),
    ("abort", [("insert", i, f"x{i}") for i in range(90, 96)]
     + [("update", 1, "x1u")]),
    # a large transaction spanning at least one eviction mid-flight
    ("commit", [("insert", i, f"c{i}") for i in range(15, 35)]),
    ("commit", [("move", 4, 40), ("update", 12, "c12u")]),
    ("commit", [("delete", 15), ("insert", 7, "d7")]),
    ("commit", [("insert", i, f"e{i}") for i in range(41, 52)]),
    ("commit", [("update", i, f"f{i}u") for i in range(0, 20, 2)
                if i not in (4, 15)]),
    ("abort", [("delete", i) for i in range(0, 6) if i != 4]),
    ("commit", [("insert", i, f"g{i}") for i in range(52, 60)]
     + [("move", 10, 60), ("delete", 22)]),
    ("commit", [("insert", i, f"h{i}") for i in range(61, 70)]),
    ("commit", [("update", 33, "h33u"), ("move", 40, 71),
                ("delete", 52), ("insert", 72, "h72")]),
]


def apply_db_op(db: Database, txn: Transaction, op: Op) -> None:
    kind = op[0]
    if kind == "insert":
        db.insert(txn, TABLE, (op[1], op[2]))
    elif kind == "update":
        db.update_by_key(txn, INDEX, (op[1],), {"val": op[2]})
    elif kind == "move":
        db.update_by_key(txn, INDEX, (op[1],), {"id": op[2]})
    elif kind == "delete":
        db.delete_by_key(txn, INDEX, (op[1],))
    else:
        raise ValueError(f"unknown op {op!r}")


def apply_oracle_op(state: OracleState, op: Op) -> None:
    kind = op[0]
    if kind == "insert":
        assert op[1] not in state, f"script bug: duplicate insert {op}"
        state[op[1]] = op[2]
    elif kind == "update":
        if op[1] in state:
            state[op[1]] = op[2]
    elif kind == "move":
        if op[1] in state:
            assert op[2] not in state, f"script bug: move onto live key {op}"
            state[op[2]] = state.pop(op[1])
    elif kind == "delete":
        state.pop(op[1], None)


class WorkloadRun(NamedTuple):
    """Everything the equivalence check needs about one (crashed) run."""

    db: Database
    history: list[tuple[int, OracleState]]  #: (txid, oracle state) commits
    final: OracleState                      #: state after last commit
    crashed: bool
    #: txid whose commit() was interrupted by the crash (durability of its
    #: COMMIT marker is ambiguous), plus the oracle state if it committed
    inflight_txid: int | None
    inflight_state: OracleState | None


def run_workload(plan: FaultPlan | None = None,
                 script: Script | None = None,
                 storage: str = "sias", obs: bool = False) -> WorkloadRun:
    """Run the scripted workload, optionally under a fault plan.

    Never lets a :class:`DeviceCrashError` escape: a crashed run is
    returned for recovery, a clean run for baseline measurements.
    """
    db = make_db(storage, obs=obs)
    if plan is not None:
        db.device.set_fault_plan(plan)
    live: OracleState = {}
    history: list[tuple[int, OracleState]] = []
    for outcome, ops in (script if script is not None else SCRIPT):
        txn = db.begin()
        pending = dict(live)
        try:
            for op in ops:
                apply_db_op(db, txn, op)
                apply_oracle_op(pending, op)
        except DeviceCrashError:
            # mid-operation crash: the transaction never reached commit(),
            # so it must recover as aborted — no ambiguity
            return WorkloadRun(db, history, live, True, None, None)
        if outcome == "abort":
            txn.abort()
            continue
        try:
            txn.commit()
        except DeviceCrashError:
            # mid-commit crash: the COMMIT marker may or may not be durable
            return WorkloadRun(db, history, live, True, txn.id, pending)
        live = pending
        history.append((txn.id, dict(live)))
    return WorkloadRun(db, history, live, False, None, None)


# ------------------------------------------------------------ equivalence

def horizon_txn(db: Database, horizon_txid: int) -> Transaction:
    """A synthetic read-only transaction seeing all commits with
    txid <= ``horizon_txid`` (and nothing else)."""
    snap = Snapshot(owner=0, xmax=horizon_txid + 1, active=frozenset(),
                    xmin=horizon_txid + 1)
    return Transaction(0, snap, db.txn)


def assert_state_equal(db: Database, horizon_txid: int,
                       expect: OracleState, context: str = "") -> None:
    """The index answers exactly like the oracle at one snapshot horizon."""
    txn = horizon_txn(db, horizon_txid)
    for key in KEY_UNIVERSE:
        got = sorted(db.select(txn, INDEX, (key,)))
        want = [(key, expect[key])] if key in expect else []
        assert got == want, (
            f"{context}: key {key} at horizon {horizon_txid}: "
            f"got {got}, want {want}")
    got_all = sorted(db.range_select(txn, INDEX, None, None))
    want_all = sorted((k, v) for k, v in expect.items())
    assert got_all == want_all, (
        f"{context}: full scan at horizon {horizon_txid} diverges: "
        f"got {len(got_all)} rows, want {len(want_all)}")


def wal_manifest_sectors(db: Database) -> set[int]:
    """Every device sector belonging to the manifest or WAL file."""
    sectors: set[int] = set()
    for file in (db.manifest_file, db.wal_file):
        for addr in file._addresses.values():
            base = addr // 512
            sectors.update(range(base, base + file.page_size // 512))
    return sectors


def recover_and_check(run: WorkloadRun, context: str = "") -> Database:
    """Recover a crashed run and assert full recovery equivalence.

    Also asserts the recovery I/O pattern: only reads, and only of
    manifest or WAL extents (partition leaves are re-attached unread).
    """
    db = run.db
    trace = db.trace
    trace.clear()
    trace.enable()
    recovered = Database.recover(db)
    trace.disable()

    allowed = wal_manifest_sectors(recovered)
    for entry in trace.entries():
        assert entry.kind == "R", (
            f"{context}: recovery issued a write at LBA {entry.lba}")
        covered = all(lba in allowed
                      for lba in range(entry.lba, entry.end_lba))
        assert covered, (
            f"{context}: recovery read outside manifest/WAL extents "
            f"(LBA {entry.lba}..{entry.end_lba})")

    # every historical commit horizon answers exactly like the oracle
    for txid, state in run.history:
        assert_state_equal(recovered, txid, state,
                           context=f"{context} horizon txid={txid}")

    # final horizon: the in-flight commit (if any) may have gone either way,
    # but the outcome must match what the recovered commit log decided
    final = run.final
    if run.inflight_txid is not None:
        status = recovered.txn.status_of(run.inflight_txid)
        assert status in (TxnStatus.COMMITTED, TxnStatus.ABORTED), (
            f"{context}: in-flight txn {run.inflight_txid} undecided")
        if status is TxnStatus.COMMITTED:
            assert run.inflight_state is not None
            final = run.inflight_state
    assert_state_equal(recovered, recovered.txn.next_txid - 1, final,
                       context=f"{context} final horizon")
    return recovered


def clean_io_count(storage: str = "sias") -> int:
    """Completed I/Os of one fault-free workload run (the sweep domain)."""
    run = run_workload(storage=storage)
    assert not run.crashed
    return run.db.device.io_count


def dump_obs_artifacts(db: Database, out_base: str) -> list[str]:
    """Write the crashed-or-recovered run's metrics/trace next to the
    sweep output (``<base>.metrics.json`` / ``<base>.trace.jsonl``).

    Host-side debugging aid — the engine itself never touches the real
    filesystem (reprolint R4)."""
    if db.obs is None:
        return []
    paths = [f"{out_base}.metrics.json", f"{out_base}.trace.jsonl"]
    with open(paths[0], "w") as fh:
        fh.write(db.obs.export_metrics_json())
    with open(paths[1], "w") as fh:
        fh.write(db.obs.export_trace_jsonl())
    return paths
