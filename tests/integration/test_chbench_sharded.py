"""CH-benchmark analytical queries over a served sharded cluster
(DESIGN.md §18.4): every OLAP query answers EXACTLY like single-node.

The mixed-run agreement lives in the differential oracle; this suite
pins the per-query results — not just cardinalities but the full
aggregates (group sums, revenue totals, top-k lists) — after the same
seeded OLTP history, with threaded scatter-gather enabled on the
:class:`~repro.serve.shard_server.ShardServer`.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.serve import ServeConfig
from repro.shard import ShardConfig, ShardedDatabase
from repro.workloads import (CHBenchmark, DatabaseBackend, TPCCConfig,
                             shard_served_backend)

pytestmark = [pytest.mark.workload]

SCALE = TPCCConfig(warehouses=2, districts_per_warehouse=2,
                   customers_per_district=5, items=25,
                   initial_orders_per_district=4, seed=47)
OLTP_TXNS = 80


@pytest.fixture(scope="module")
def ch_pair():
    """(single-node, shard-served) CH benchmarks after one seeded OLTP
    history each — identical by the determinism property."""
    pair = {}
    for kind in ("database", "shard-server"):
        if kind == "database":
            backend = DatabaseBackend(Database(EngineConfig()))
        else:
            router = ShardedDatabase(EngineConfig(),
                                     ShardConfig(shards=4))
            backend = shard_served_backend(
                router, ServeConfig(parallel_scatter_gather=True))
        ch = CHBenchmark(backend, SCALE)
        ch.load()
        ch.tpcc.run(OLTP_TXNS)
        pair[kind] = (backend, ch)
    yield pair
    for backend, _ch in pair.values():
        backend.close()


def _query_both(ch_pair, fn):
    out = {}
    for kind, (backend, ch) in ch_pair.items():
        txn = backend.begin()
        try:
            out[kind] = fn(ch, txn)
        finally:
            txn.commit()
    return out["database"], out["shard-server"]


def test_q1_group_sums_agree(ch_pair) -> None:
    base, sharded = _query_both(ch_pair, lambda ch, t: ch.query_q1(t))
    assert len(base) > 5
    assert sharded == base


def test_q6_revenue_agrees(ch_pair) -> None:
    base, sharded = _query_both(ch_pair, lambda ch, t: ch.query_q6(t))
    assert base > 0
    assert sharded == pytest.approx(base)


def test_carrier_counts_agree(ch_pair) -> None:
    base, sharded = _query_both(
        ch_pair, lambda ch, t: ch.query_orders_by_carrier(t))
    assert sum(base.values()) > 0
    assert sharded == base


def test_low_stock_agrees(ch_pair) -> None:
    base, sharded = _query_both(
        ch_pair, lambda ch, t: ch.query_low_stock(t))
    assert sharded == base


def test_q4_delivered_orders_agree(ch_pair) -> None:
    base, sharded = _query_both(ch_pair, lambda ch, t: ch.query_q4(t))
    assert sharded == base


def test_top_customers_agree(ch_pair) -> None:
    base, sharded = _query_both(
        ch_pair, lambda ch, t: ch.query_top_customers(t))
    assert len(base) == 10
    assert sharded == base


def test_revenue_by_district_agrees(ch_pair) -> None:
    base, sharded = _query_both(
        ch_pair, lambda ch, t: ch.query_revenue_by_district(t))
    assert len(base) == SCALE.warehouses * SCALE.districts_per_warehouse
    assert sharded == base


def test_every_named_query_cardinality_agrees(ch_pair) -> None:
    """The run_query dispatch path (used by the mixed driver) agrees on
    every named query's cardinality in one snapshot."""
    def all_counts(ch, txn):
        return {name: ch.run_query(txn, name) for name in ch.QUERIES}
    base, sharded = _query_both(ch_pair, all_counts)
    assert sharded == base


def test_paused_query_rows_agree(ch_pair) -> None:
    """The Figure-12b stale-snapshot device returns the same cardinality
    on both backends (sim durations differ: protocols cost differently)."""
    rows = {}
    for kind, (_backend, ch) in ch_pair.items():
        _elapsed, cardinality = ch.run_paused_query(pause_slices=2,
                                                    oltp_per_slice=10)
        rows[kind] = cardinality
    assert rows["shard-server"] == rows["database"]
