"""Integration: failure injection and recovery-adjacent invariants.

The engine must fail *cleanly*: aborted transactions leave no trace,
resource exhaustion raises typed errors without corrupting state, and
mid-transaction errors roll back atomically at the snapshot level.
Crash recovery proper (partition manifest + P_N write-ahead log, see
DESIGN.md §11) is exercised by the fault-injection sweep in
``tests/crash/``; this module covers in-process failure paths that hold
with or without durability enabled.
"""

import pytest

from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import (DeviceError, ReproError, UniqueViolationError,
                          WriteConflictError)
from repro.sim.profiles import DeviceProfile, OpCost


def make_db(storage="sias", **cfg):
    defaults = dict(buffer_pool_pages=64, partition_buffer_bytes=16 * 8192)
    defaults.update(cfg)
    db = Database(EngineConfig(**defaults))
    db.create_table("r", [("a", "int"), ("b", "str")], storage=storage)
    db.create_index("ix", "r", ["a"], kind="mvpbt")
    return db


@pytest.mark.parametrize("storage", ["heap", "sias", "delta"])
class TestAbortAtomicity:
    def test_multi_statement_abort_leaves_no_trace(self, storage):
        db = make_db(storage)
        t = db.begin()
        db.insert(t, "r", (1, "keep"))
        t.commit()
        t2 = db.begin()
        db.insert(t2, "r", (2, "gone"))
        db.update_by_key(t2, "ix", (1,), {"b": "also-gone"})
        db.insert(t2, "r", (3, "gone-too"))
        t2.abort()
        r = db.begin()
        assert db.range_select(r, "ix", None, None) == [(1, "keep")]

    def test_abort_after_delete_restores_visibility(self, storage):
        db = make_db(storage)
        t = db.begin()
        db.insert(t, "r", (1, "keep"))
        t.commit()
        t2 = db.begin()
        db.delete_by_key(t2, "ix", (1,))
        t2.abort()
        r = db.begin()
        assert db.select(r, "ix", (1,)) == [(1, "keep")]
        # the tuple is still updatable after the aborted delete
        t3 = db.begin()
        assert db.update_by_key(t3, "ix", (1,), {"b": "updated"}) == 1
        t3.commit()

    def test_unique_violation_mid_txn_can_roll_back(self, storage):
        db = Database(EngineConfig(buffer_pool_pages=64))
        db.create_table("u", [("a", "int")], storage=storage)
        db.create_index("ux", "u", ["a"], kind="mvpbt", unique=True)
        t = db.begin()
        db.insert(t, "u", (1,))
        t.commit()
        t2 = db.begin()
        db.insert(t2, "u", (2,))
        with pytest.raises(UniqueViolationError):
            db.insert(t2, "u", (1,))
        t2.abort()
        r = db.begin()
        assert db.range_select(r, "ux", None, None) == [(1,)]

    def test_conflict_retry_pattern(self, storage):
        db = make_db(storage)
        t = db.begin()
        db.insert(t, "r", (1, "v0"))
        t.commit()
        t1 = db.begin()
        t2 = db.begin()
        db.update_by_key(t1, "ix", (1,), {"b": "first"})
        with pytest.raises(WriteConflictError):
            db.update_by_key(t2, "ix", (1,), {"b": "second"})
        t2.abort()
        t1.commit()
        # the standard retry succeeds
        t3 = db.begin()
        assert db.update_by_key(t3, "ix", (1,), {"b": "second"}) == 1
        t3.commit()
        r = db.begin()
        assert db.select(r, "ix", (1,)) == [(1, "second")]


class TestResourceExhaustion:
    def test_device_full_raises_typed_error(self):
        tiny = DeviceProfile(
            name="tiny", capacity_bytes=24 * 8192,
            seq_read=OpCost(1e6, 1e6), rand_read=OpCost(1e6, 1e6),
            seq_write=OpCost(1e6, 1e6), rand_write=OpCost(1e6, 1e6))
        db = Database(EngineConfig(buffer_pool_pages=64), profile=tiny)
        db.create_table("r", [("a", "int"), ("b", "str")], storage="sias")
        with pytest.raises(DeviceError):
            t = db.begin()
            for i in range(100_000):
                db.insert(t, "r", (i, "x" * 500))

    def test_errors_share_base_class(self):
        for exc in (DeviceError, UniqueViolationError, WriteConflictError):
            assert issubclass(exc, ReproError)


class TestEvictionDuringActivity:
    def test_eviction_mid_transaction_preserves_own_writes(self):
        db = make_db(partition_buffer_bytes=2 * 8192)
        t = db.begin()
        for i in range(800):
            db.insert(t, "r", (i, "v"))
        # own uncommitted writes survived evictions of P_N
        assert db.select(t, "ix", (5,)) == [(5, "v")]
        assert db.count_range(t, "ix", (0,), (799,)) == 800
        t.commit()
        ix = db.catalog.index("ix").mvpbt
        assert ix.stats.evictions >= 1

    def test_uncommitted_records_survive_eviction_gc(self):
        """Phase-3 GC at eviction must keep in-progress records."""
        db = make_db(partition_buffer_bytes=2 * 8192)
        loader = db.begin()
        db.insert(loader, "r", (1, "uncommitted"))
        # force evictions with another transaction's volume
        filler = db.begin()
        for i in range(1000):
            db.insert(filler, "r", (1000 + i, "fill"))
        filler.commit()
        loader.commit()
        r = db.begin()
        assert db.select(r, "ix", (1,)) == [(1, "uncommitted")]
