"""The workload differential oracle (DESIGN.md §18.5).

Every workload, at a fixed seed, must produce the IDENTICAL committed
final state no matter which backend executes it: a single-node database,
a served session pool, a 1-shard router (the degenerate cluster), a
4-shard 2PC router, and a served 4-shard cluster with threaded
scatter-gather.  Backends differ only in simulated cost and protocol —
never in results.

The oracle compares full-table dumps under fresh snapshots (sorted row
multisets) and, for TPC-C, additionally asserts the spec's consistency
invariants (warehouse/district YTD, order counters, new-order pairing,
order-line cardinalities) on every backend's final state.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.obs.config import ObsConfig
from repro.serve import ServeConfig
from repro.shard import ShardConfig, ShardedDatabase
from repro.workloads import (WORKLOADS, CHBenchmark, DatabaseBackend,
                             ShardedBackend, TPCCConfig, TPCCRunner,
                             WorkloadBackend, YCSBConfig, YCSBRunner,
                             assert_tpcc_consistent, served_backend,
                             shard_served_backend)

pytestmark = [pytest.mark.workload]

#: the oracle panel: every backend the runners must agree across
PANEL = ("database", "server", "sharded-1", "sharded-4",
         "shard-server-4")


def make_panel_backend(kind: str) -> WorkloadBackend:
    config = EngineConfig(obs=ObsConfig(enabled=True))
    if kind == "database":
        return DatabaseBackend(Database(config))
    if kind == "server":
        return served_backend(Database(config))
    shards = int(kind.rsplit("-", 1)[1])
    router = ShardedDatabase(config, ShardConfig(shards=shards))
    if kind.startswith("sharded"):
        return ShardedBackend(router)
    return shard_served_backend(
        router, ServeConfig(parallel_scatter_gather=True))


# ------------------------------------------------------------------- YCSB

YCSB_SCALE = dict(record_count=150, operation_count=200)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_ycsb_identical_final_state_across_backends(workload: str) -> None:
    """YCSB A-F: one op stream, five backends, one committed state."""
    config = WORKLOADS[workload].scaled(seed=101, **YCSB_SCALE)
    dumps: dict[str, list] = {}
    results = {}
    for kind in PANEL:
        with make_panel_backend(kind) as backend:
            runner = YCSBRunner(backend, config, workload)
            runner.load()
            result = runner.run()
            assert result.operations == config.operation_count, (
                f"{kind} did not run to completion")
            results[kind] = (result.counts, result.not_found)
            dumps[kind] = backend.dump_table("usertable")
    baseline = dumps["database"]
    assert len(baseline) >= config.record_count
    for kind in PANEL:
        assert results[kind] == results["database"], (
            f"workload {workload}: {kind} op counts diverged")
        assert dumps[kind] == baseline, (
            f"workload {workload}: {kind} final state differs from "
            f"single-node ({len(dumps[kind])} vs {len(baseline)} rows)")


def test_ycsb_scan_heavy_state_not_trivial() -> None:
    """Workload E actually exercises scatter-gather scans + inserts."""
    config = WORKLOADS["E"].scaled(seed=101, **YCSB_SCALE)
    with make_panel_backend("shard-server-4") as backend:
        runner = YCSBRunner(backend, config, "E")
        runner.load()
        result = runner.run()
        assert result.counts["scan"] > 100
        assert result.counts["insert"] > 0
        assert backend.dump_table("usertable")


# ------------------------------------------------------------------ TPC-C

TPCC_SCALE = TPCCConfig(warehouses=2, districts_per_warehouse=2,
                        customers_per_district=5, items=30,
                        initial_orders_per_district=5, seed=23)
TPCC_TXNS = 150

TPCC_TABLES = ("warehouse", "district", "customer", "item", "stock",
               "orders", "new_order", "order_line", "history")


@pytest.fixture(scope="module")
def tpcc_panel() -> dict[str, dict]:
    """Run the same TPC-C mix on every backend once (shared fixture)."""
    out: dict[str, dict] = {}
    for kind in PANEL:
        backend = make_panel_backend(kind)
        runner = TPCCRunner(backend, TPCC_SCALE, record_ops=True)
        runner.load()
        result = runner.run(TPCC_TXNS)
        out[kind] = {
            "backend": backend,
            "result": result,
            "op_log": list(runner.op_log),
            "dumps": {t: backend.dump_table(t) for t in TPCC_TABLES},
        }
    yield out
    for entry in out.values():
        entry["backend"].close()


def test_tpcc_runs_to_completion_everywhere(tpcc_panel) -> None:
    for kind in PANEL:
        result = tpcc_panel[kind]["result"]
        assert result.committed + result.aborted == TPCC_TXNS, (
            f"{kind} lost transactions")
        assert result.committed > 100
        assert result.by_type.get("new_order", 0) > 20


def test_tpcc_identical_final_state_across_backends(tpcc_panel) -> None:
    """The tentpole assertion: all nine tables byte-identical."""
    baseline = tpcc_panel["database"]["dumps"]
    for kind in PANEL:
        for table in TPCC_TABLES:
            got = tpcc_panel[kind]["dumps"][table]
            assert got == baseline[table], (
                f"{kind}: table {table} differs from single-node "
                f"({len(got)} vs {len(baseline[table])} rows)")


def test_tpcc_identical_op_streams(tpcc_panel) -> None:
    """Data-dependent op logs agree: the backends saw the same data at
    every decision point, not just at the end."""
    baseline = tpcc_panel["database"]["op_log"]
    assert len(baseline) == TPCC_TXNS
    for kind in PANEL:
        assert tpcc_panel[kind]["op_log"] == baseline, (
            f"{kind}: op stream diverged")


def test_tpcc_results_agree(tpcc_panel) -> None:
    baseline = tpcc_panel["database"]["result"]
    for kind in PANEL:
        result = tpcc_panel[kind]["result"]
        assert result.committed == baseline.committed
        assert result.aborted == baseline.aborted
        assert result.by_type == baseline.by_type


def test_tpcc_consistency_invariants_every_backend(tpcc_panel) -> None:
    for kind in PANEL:
        assert_tpcc_consistent(tpcc_panel[kind]["backend"],
                               context=kind)


def test_tpcc_cross_shard_commits_happened(tpcc_panel) -> None:
    """The 4-shard agreement is only meaningful if transactions really
    spanned shards.  (Non-durable clusters skip the 2PC marker I/O by
    design — the durable crash suite exercises the full marker flow.)"""
    for kind in ("sharded-4", "shard-server-4"):
        router = tpcc_panel[kind]["backend"].router
        cross = router.obs.registry.counter_value(
            "shard.txn.commits.cross_shard")
        single = router.obs.registry.counter_value(
            "shard.txn.commits.single_shard")
        assert cross > 0, f"{kind}: no multi-shard commit happened"
        assert single > 0, f"{kind}: no single-shard fast path used"


# --------------------------------------------------------------- CH (HTAP)

def test_chbench_mixed_identical_state() -> None:
    """The mixed HTAP driver agrees between single-node and a served
    4-shard cluster — including the snapshot-held analytical reads."""
    panel = {}
    for kind in ("database", "shard-server-4"):
        backend = make_panel_backend(kind)
        ch = CHBenchmark(backend, TPCC_SCALE)
        ch.load()
        result = ch.run_mixed(rounds=2, oltp_slice=30)
        panel[kind] = (backend, ch, result)
    base_backend, _base_ch, base_result = panel["database"]
    shard_backend, _shard_ch, shard_result = panel["shard-server-4"]
    assert shard_result.oltp_committed == base_result.oltp_committed
    assert shard_result.query_rows == base_result.query_rows
    for table in TPCC_TABLES:
        assert (shard_backend.dump_table(table)
                == base_backend.dump_table(table)), f"{table} differs"
    for backend, _ch, _result in panel.values():
        assert_tpcc_consistent(backend, context="chbench")
        backend.close()
