"""Integration: TPC-C runs correctly on every base-table design, and the
buffer pool works with either replacement policy."""

import pytest

from repro.buffer.policy import ClockPolicy
from repro.buffer.pool import BufferPool
from repro.config import EngineConfig
from repro.engine import Database
from repro.index.base import TOP
from repro.workloads.tpcc import TPCCConfig, TPCCRunner


def small_tpcc():
    return TPCCConfig(warehouses=1, districts_per_warehouse=2,
                      customers_per_district=10, items=20,
                      initial_orders_per_district=8, seed=9)


class TestTPCCStorageMatrix:
    @pytest.mark.parametrize("storage", ["heap", "sias", "delta"])
    @pytest.mark.parametrize("kind", ["btree", "mvpbt"])
    def test_runs_and_stays_consistent(self, storage, kind):
        db = Database(EngineConfig(buffer_pool_pages=256))
        runner = TPCCRunner(db, small_tpcc(), index_kind=kind,
                            storage=storage)
        runner.load()
        result = runner.run(120)
        assert result.committed > 100, (storage, kind)
        # order-lines-per-order invariant
        t = db.begin()
        for order in db.seq_scan(t, "orders")[:20]:
            w, d, o_id, _c, _carrier, ol_cnt = order[:6]
            lines = db.range_select(t, "idx_order_line", (w, d, o_id),
                                    (w, d, o_id, TOP))
            assert len(lines) == ol_cnt, (storage, kind, o_id)
        t.commit()


class TestClockPolicyPool:
    def test_engine_works_with_clock_replacement(self):
        db = Database(EngineConfig(buffer_pool_pages=32))
        db.pool = BufferPool(32, policy=ClockPolicy(),
                             clock=db.clock, cost=db.config.cost)
        db.create_table("r", [("a", "int"), ("b", "str")], storage="sias")
        db.create_index("ix", "r", ["a"], kind="mvpbt")
        t = db.begin()
        for i in range(2000):
            db.insert(t, "r", (i, "x" * 100))
        t.commit()
        db.flush_all()
        r = db.begin()
        for probe in (0, 999, 1999):
            assert db.select(r, "ix", (probe,)) == [(probe, "x" * 100)]
        assert db.pool.evictions > 0
        r.commit()
