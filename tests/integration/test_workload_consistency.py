"""Integration: workload drivers leave the database consistent."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database
from repro.index.base import TOP
from repro.kv import make_kv_store
from repro.workloads.chbench import CHBenchmark
from repro.workloads.tpcc import TPCCConfig, TPCCRunner
from repro.workloads.ycsb import run_workload


def tpcc_config():
    return TPCCConfig(warehouses=1, districts_per_warehouse=2,
                      customers_per_district=12, items=25,
                      initial_orders_per_district=8, seed=5)


class TestTPCCInvariants:
    @pytest.fixture(scope="class", params=["btree", "pbt", "mvpbt"])
    def ran(self, request):
        db = Database(EngineConfig(buffer_pool_pages=256))
        runner = TPCCRunner(db, tpcc_config(), index_kind=request.param)
        runner.load()
        result = runner.run(250)
        return db, runner, result

    def test_most_transactions_commit(self, ran):
        _db, _runner, result = ran
        assert result.committed > 200

    def test_district_counter_matches_orders(self, ran):
        """Every committed NewOrder leaves exactly one order row keyed by
        the district's pre-increment counter."""
        db, runner, _result = ran
        t = db.begin()
        for d_row in db.seq_scan(t, "district"):
            w, d, next_o = d_row[0], d_row[1], d_row[4]
            orders = db.range_select(t, "idx_orders", (w, d), (w, d, TOP))
            ids = sorted(o[2] for o in orders)
            assert ids == list(range(1, next_o)), (w, d)
        t.commit()

    def test_order_lines_match_ol_cnt(self, ran):
        db, _runner, _result = ran
        t = db.begin()
        for order in db.seq_scan(t, "orders"):
            w, d, o_id, _c, _carrier, ol_cnt = order[:6]
            lines = db.range_select(t, "idx_order_line", (w, d, o_id),
                                    (w, d, o_id, TOP))
            assert len(lines) == ol_cnt, (w, d, o_id)
        t.commit()

    def test_new_order_rows_reference_undelivered_orders(self, ran):
        db, _runner, _result = ran
        t = db.begin()
        for no in db.seq_scan(t, "new_order"):
            order = db.select(t, "idx_orders", (no[0], no[1], no[2]))
            assert order and order[0][4] == 0   # carrier not assigned yet
        t.commit()

    def test_secondary_index_agrees_with_primary(self, ran):
        db, _runner, _result = ran
        t = db.begin()
        by_last = db.range_select(t, "idx_customer_last", None, None)
        by_id = db.range_select(t, "idx_customer", None, None)
        assert sorted(by_last) == sorted(by_id)
        t.commit()


class TestCHConsistency:
    def test_analytics_do_not_disturb_oltp_state(self):
        db = Database(EngineConfig(buffer_pool_pages=256))
        ch = CHBenchmark(db, tpcc_config(), index_kind="mvpbt")
        ch.load()
        result = ch.run_mixed(rounds=2, oltp_slice=40)
        assert result.oltp_committed > 0
        # post-run invariant: order lines per order still match
        t = db.begin()
        for order in db.seq_scan(t, "orders")[:30]:
            w, d, o_id, _c, _carrier, ol_cnt = order[:6]
            lines = db.range_select(t, "idx_order_line", (w, d, o_id),
                                    (w, d, o_id, TOP))
            assert len(lines) == ol_cnt
        t.commit()


class TestYCSBAcrossEngines:
    def test_final_state_agrees(self):
        """Same seed, same workload -> all engines end with the same data."""
        finals = {}
        for kind in ("btree", "lsm", "mvpbt"):
            store = make_kv_store(kind, EngineConfig(
                buffer_pool_pages=64, partition_buffer_bytes=16 * 8192))
            run_workload(store, "A", record_count=300, operation_count=600,
                         seed=3)
            finals[kind] = store.scan("user", 400)
        assert finals["btree"] == finals["lsm"] == finals["mvpbt"]
