"""Integration: HTAP behaviours the paper is about.

Long version chains from a mix of short writers and long readers; the
index-only visibility check's I/O advantage; GC blocked by snapshots.
"""

import pytest

from repro.config import EngineConfig
from repro.engine import Database


def make_db(kind, **index_opts):
    db = Database(EngineConfig(buffer_pool_pages=96,
                               partition_buffer_bytes=32 * 8192))
    db.create_table("r", [("a", "int"), ("z", "str")], storage="sias")
    db.create_index("idx_a", "r", ["a"], kind=kind, **index_opts)
    return db


class TestLongChains:
    def grow_chain(self, db, versions):
        t = db.begin()
        db.insert(t, "r", (7, "v0"))
        for i in range(50):
            db.insert(t, "r", (1000 + i, "pad"))
        t.commit()
        reader = db.begin()   # pins every later version as transient
        for i in range(versions):
            t = db.begin()
            db.update_by_key(t, "idx_a", (7,), {"z": f"v{i + 1}"})
            t.commit()
        return reader

    def test_old_reader_correct_for_all_engines(self):
        for kind in ("btree", "pbt", "mvpbt"):
            db = make_db(kind)
            reader = self.grow_chain(db, 30)
            assert db.select(reader, "idx_a", (7,)) == [(7, "v0")], kind
            fresh = db.begin()
            assert db.select(fresh, "idx_a", (7,)) == [(7, "v30")], kind

    def test_index_only_visibility_saves_table_reads(self):
        """The core claim: with long chains MV-PBT answers key queries
        without fetching chain versions from the base table."""
        results = {}
        for kind in ("btree", "mvpbt"):
            db = make_db(kind)
            reader = self.grow_chain(db, 40)
            db.flush_all()
            db.pool.reset_stats()
            table_file = db.catalog.table("r").file
            before = db.pool.stats_for(table_file).requests
            count = db.count_range(reader, "idx_a", (7,), (7,))
            assert count == 1
            results[kind] = db.pool.stats_for(table_file).requests - before
        assert results["mvpbt"] == 0
        assert results["btree"] > 0

    def test_gc_unblocks_after_reader_commits(self):
        db = make_db("mvpbt")
        reader = self.grow_chain(db, 20)
        ix = db.catalog.index("idx_a").mvpbt
        records_with_reader = ix.record_count()
        reader.commit()
        # scans flag, updates purge
        r = db.begin()
        db.select(r, "idx_a", (7,))
        r.commit()
        t = db.begin()
        db.insert(t, "r", (9999, "trigger"))
        t.commit()
        assert ix.record_count() < records_with_reader


class TestWriteConflicts:
    def test_first_updater_wins(self):
        db = make_db("mvpbt")
        t = db.begin()
        db.insert(t, "r", (1, "base"))
        t.commit()
        t1 = db.begin()
        t2 = db.begin()
        db.update_by_key(t1, "idx_a", (1,), {"z": "t1"})
        from repro.errors import WriteConflictError
        with pytest.raises(WriteConflictError):
            db.update_by_key(t2, "idx_a", (1,), {"z": "t2"})
        t1.commit()
        t2.abort()
        fresh = db.begin()
        assert db.select(fresh, "idx_a", (1,)) == [(1, "t1")]

    def test_aborted_update_leaves_no_trace(self):
        db = make_db("mvpbt")
        t = db.begin()
        db.insert(t, "r", (1, "base"))
        t.commit()
        t2 = db.begin()
        db.update_by_key(t2, "idx_a", (1,), {"z": "doomed"})
        t2.abort()
        fresh = db.begin()
        assert db.select(fresh, "idx_a", (1,)) == [(1, "base")]
        t3 = db.begin()
        db.update_by_key(t3, "idx_a", (1,), {"z": "winner"})
        t3.commit()
        assert db.select(db.begin(), "idx_a", (1,)) == [(1, "winner")]


class TestEvictionUnderLoad:
    def test_many_evictions_preserve_queries(self):
        db = Database(EngineConfig(buffer_pool_pages=96,
                                   partition_buffer_bytes=2 * 8192))
        db.create_table("r", [("a", "int"), ("z", "str")], storage="sias")
        db.create_index("idx_a", "r", ["a"], kind="mvpbt")
        expected = {}
        for i in range(1200):
            t = db.begin()
            db.insert(t, "r", (i, f"v{i}"))
            expected[i] = f"v{i}"
            t.commit()
        for i in range(0, 1200, 4):
            t = db.begin()
            db.update_by_key(t, "idx_a", (i,), {"z": f"u{i}"})
            expected[i] = f"u{i}"
            t.commit()
        ix = db.catalog.index("idx_a").mvpbt
        assert ix.partition_count >= 2
        reader = db.begin()
        for probe in (0, 3, 4, 599, 1199):
            assert db.select(reader, "idx_a", (probe,)) == [
                (probe, expected[probe])], probe
        assert db.count_range(reader, "idx_a", (0,), (99,)) == 100
