"""Integration: the paper's Figure 2/10 scenario on every engine combination.

Every storage kind x index kind x reference mode must produce identical
query answers; only the costs differ.  Every combination runs with the
observability layer enabled and ends with a registry-vs-engine invariant
check (``check_invariants``), so the matrix doubles as an accounting
cross-check: the obs counters must agree exactly with the engine's own
statistics on every path the matrix exercises.
"""

import pytest

from repro.config import EngineConfig
from repro.engine import Database
from repro.obs import ObsConfig, check_invariants

COMBINATIONS = [
    (storage, kind, ref)
    for storage in ("heap", "sias")
    for kind in ("btree", "pbt", "mvpbt")
    for ref in ("physical", "logical")
]


def assert_metrics_consistent(db):
    problems = check_invariants(db)
    assert problems == []
    cv = db.obs.registry.counter_value
    device = db.device.stats
    assert cv("device.bytes_read") == device.bytes_read
    assert cv("device.bytes_written") == device.bytes_written
    pool = db.pool.total_stats()
    assert (cv("buffer.pool.hits") + cv("buffer.pool.misses")
            == cv("buffer.pool.lookups") == pool.requests)


@pytest.mark.parametrize("storage,kind,ref", COMBINATIONS)
class TestFigure10Matrix:
    def _db(self, storage, kind, ref):
        db = Database(EngineConfig(buffer_pool_pages=128,
                                   obs=ObsConfig(enabled=True)))
        db.create_table("r", [("a", "int"), ("z", "str")], storage=storage)
        db.create_index("idx_a", "r", ["a"], kind=kind, reference=ref)
        return db

    def test_paper_lifecycle(self, storage, kind, ref):
        db = self._db(storage, kind, ref)
        tx0 = db.begin()
        db.insert(tx0, "r", (7, "V0"))
        tx0.commit()
        txr = db.begin()                        # long-running query TXR

        tx1 = db.begin()
        assert db.update_by_key(tx1, "idx_a", (7,), {"z": "V1"}) == 1
        tx1.commit()
        tx2 = db.begin()
        assert db.update_by_key(tx2, "idx_a", (7,), {"a": 1}) == 1
        tx2.commit()
        tx3 = db.begin()
        assert db.delete_by_key(tx3, "idx_a", (1,)) == 1
        tx3.commit()

        # the paper's COUNT(*) WHERE a <= 10 for TXR returns exactly 1
        assert db.count_range(txr, "idx_a", None, (10,)) == 1
        assert db.select(txr, "idx_a", (7,)) == [(7, "V0")]
        assert db.select(txr, "idx_a", (1,)) == []
        txr.commit()

        fresh = db.begin()
        assert db.count_range(fresh, "idx_a", None, (10,)) == 0
        fresh.commit()
        assert_metrics_consistent(db)

    def test_bulk_consistency_with_oracle(self, storage, kind, ref):
        db = self._db(storage, kind, ref)
        import random
        rng = random.Random(17)
        oracle: dict[int, str] = {}
        next_tag = 0
        for _ in range(300):
            op = rng.random()
            key = rng.randrange(40)
            t = db.begin()
            if op < 0.5:
                tag = f"t{next_tag}"
                next_tag += 1
                if key in oracle:
                    db.update_by_key(t, "idx_a", (key,), {"z": tag})
                else:
                    db.insert(t, "r", (key, tag))
                oracle[key] = tag
            elif op < 0.7 and key in oracle:
                db.delete_by_key(t, "idx_a", (key,))
                del oracle[key]
            else:
                rows = db.select(t, "idx_a", (key,))
                expected = ([(key, oracle[key])] if key in oracle else [])
                assert rows == expected, (storage, kind, ref, key)
            t.commit()
        reader = db.begin()
        all_rows = sorted(db.range_select(reader, "idx_a", None, None))
        assert all_rows == sorted((k, v) for k, v in oracle.items())
        reader.commit()
        assert_metrics_consistent(db)
