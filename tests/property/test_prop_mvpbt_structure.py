"""Property tests on MV-PBT structural invariants.

* the streaming ``cursor`` yields exactly ``range_scan``'s hits, in order,
  and its lazily-consumed prefixes match as well;
* ``scan_limit`` returns exactly the prefix of ``range_scan``;
* eviction points (when partitions are cut) never change query answers;
* partition merge never changes query answers;
* the record serialisation codec round-trips arbitrary records.
"""

from itertools import islice

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.records import MVPBTRecord, RecordType
from repro.core.serialization import decode_record, encode_record
from repro.core.tree import MVPBT
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager

KEYS = list(range(10))

operation = st.tuples(
    st.sampled_from(KEYS),
    st.sampled_from(["insert", "update", "delete", "evict"]),
    st.booleans(),                       # snapshot before this op?
)


def build_tree():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    mgr = TransactionManager(clock)
    tree = MVPBT("p", PageFile("p", device, 2048, 8), BufferPool(256),
                 PartitionBuffer(1 << 22), mgr)
    return mgr, tree


def apply_ops(mgr, tree, ops):
    """Replays the history; returns held snapshots and a live-rid oracle."""
    live: dict[int, tuple[RecordID, int]] = {}   # key -> (rid, vid)
    next_vid = 1
    next_rid = 0
    held = []
    for key, action, snap_before in ops:
        if snap_before:
            held.append((mgr.begin(),
                         {k: rid for k, (rid, _v) in live.items()}))
        txn = mgr.begin()
        if action == "insert" and key not in live:
            next_rid += 1
            rid = RecordID(0, next_rid)
            tree.insert(txn, (key,), rid, vid=next_vid)
            live[key] = (rid, next_vid)
            next_vid += 1
        elif action == "update" and key in live:
            old_rid, vid = live[key]
            next_rid += 1
            rid = RecordID(0, next_rid)
            tree.update_nonkey(txn, (key,), rid, old_rid, vid)
            live[key] = (rid, vid)
        elif action == "delete" and key in live:
            old_rid, vid = live[key]
            tree.delete(txn, (key,), old_rid, vid)
            del live[key]
        elif action == "evict":
            tree.evict_partition()
        txn.commit()
    held.append((mgr.begin(), {k: rid for k, (rid, _v) in live.items()}))
    return held


def check_answers(tree, held):
    for snap_txn, expected in held:
        full = tree.range_scan(snap_txn, None, None)
        assert sorted((h.key[0], h.rid) for h in full) \
            == sorted(expected.items())
        # the streaming cursor yields exactly the same hits, already in
        # key order (it feeds the oracle-checked range_scan, but verify
        # the generator path end to end, including early abandonment)
        assert list(tree.cursor(snap_txn, None, None)) == full
        cur = tree.cursor(snap_txn, None, None)
        prefix = list(islice(cur, 2))
        cur.close()
        assert prefix == full[:2]
        # scan_limit agrees with every prefix of the full scan
        for limit in (1, 3, len(expected) + 2):
            limited = tree.scan_limit(snap_txn, None, limit)
            assert [(h.key, h.rid) for h in limited] \
                == [(h.key, h.rid) for h in full[:limit]]


@settings(max_examples=30, deadline=None)
@given(st.lists(operation, max_size=60))
def test_eviction_points_never_change_answers(ops):
    mgr, tree = build_tree()
    held = apply_ops(mgr, tree, ops)
    check_answers(tree, held)
    for snap_txn, _expected in held:
        snap_txn.commit()


@settings(max_examples=30, deadline=None)
@given(st.lists(operation, max_size=60))
def test_merge_never_changes_answers(ops):
    mgr, tree = build_tree()
    held = apply_ops(mgr, tree, ops)
    tree.evict_partition()
    tree.merge_partitions()
    check_answers(tree, held)
    for snap_txn, _expected in held:
        snap_txn.commit()


rids = st.integers(0, 2 ** 16 - 1).map(lambda s: RecordID(s % 97, s))
record_strategy = st.builds(
    MVPBTRecord,
    key=st.tuples(st.integers(-1000, 1000), st.text(max_size=8)),
    ts=st.integers(0, 2 ** 40),
    seq=st.integers(0, 2 ** 40),
    rtype=st.sampled_from([RecordType.REGULAR, RecordType.REPLACEMENT,
                           RecordType.ANTI, RecordType.TOMBSTONE]),
    vid=st.integers(0, 2 ** 32),
    rid_new=st.one_of(st.none(), rids),
    rid_old=st.one_of(st.none(), rids),
    payload=st.one_of(st.none(), st.text(max_size=20)),
    flags=st.integers(0, 1),
)


@settings(max_examples=150, deadline=None)
@given(record_strategy)
def test_serialization_roundtrip(record):
    decoded, _consumed = decode_record(encode_record(record))
    assert decoded.key == record.key
    assert decoded.ts == record.ts
    assert decoded.seq == record.seq
    assert decoded.rtype == record.rtype
    assert decoded.vid == record.vid
    assert decoded.rid_new == record.rid_new
    assert decoded.rid_old == record.rid_old
    assert decoded.payload == record.payload
    assert decoded.flags == record.flags
