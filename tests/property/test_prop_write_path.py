"""Property tests on the streaming write path.

Under arbitrary interleavings of inserts, updates, deletes, snapshot
acquisitions and evictions, merging persisted partitions — the full set or
a tiered sub-window — must never change any held or fresh snapshot's query
answers: the streaming GC-filtered k-way merge plus single-pass rebuild is
a pure physical reorganisation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.merge import select_merge_window
from repro.core.tree import MVPBT
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager

KEYS = list(range(12))

operation = st.tuples(
    st.sampled_from(KEYS),
    st.sampled_from(["insert", "update", "delete", "evict"]),
    st.booleans(),                       # snapshot before this op?
)


def build_tree(**opts):
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    mgr = TransactionManager(clock)
    tree = MVPBT("wp", PageFile("wp", device, 2048, 8), BufferPool(256),
                 PartitionBuffer(1 << 22), mgr, **opts)
    return mgr, tree


def apply_ops(mgr, tree, ops):
    live: dict[int, tuple[RecordID, int]] = {}
    next_vid = 1
    next_rid = 0
    held = []
    for key, action, snap_before in ops:
        if snap_before:
            held.append((mgr.begin(),
                         {k: rid for k, (rid, _v) in live.items()}))
        txn = mgr.begin()
        if action == "insert" and key not in live:
            next_rid += 1
            rid = RecordID(0, next_rid)
            tree.insert(txn, (key,), rid, vid=next_vid)
            live[key] = (rid, next_vid)
            next_vid += 1
        elif action == "update" and key in live:
            old_rid, vid = live[key]
            next_rid += 1
            rid = RecordID(0, next_rid)
            tree.update_nonkey(txn, (key,), rid, old_rid, vid)
            live[key] = (rid, vid)
        elif action == "delete" and key in live:
            old_rid, vid = live[key]
            tree.delete(txn, (key,), old_rid, vid)
            del live[key]
        elif action == "evict":
            tree.evict_partition()
        txn.commit()
    held.append((mgr.begin(), {k: rid for k, (rid, _v) in live.items()}))
    return held


def snapshot_answers(tree, held):
    return [
        (sorted((h.key[0], h.rid) for h in tree.range_scan(txn, None, None)),
         [[h.rid for h in tree.search(txn, (k,))] for k in KEYS])
        for txn, _expected in held
    ]


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(operation, min_size=1, max_size=40))
def test_merge_preserves_all_snapshot_answers(ops):
    mgr, tree = build_tree()
    held = apply_ops(mgr, tree, ops)
    before = snapshot_answers(tree, held)
    # oracle check on the freshest snapshot, then merge, then recheck all
    fresh_txn, expected = held[-1]
    assert before[-1][0] == sorted(expected.items())
    while len(tree.persisted_partitions) >= 2:
        start, k = select_merge_window(tree.persisted_partitions, 2)
        tree.merge_partitions(k, start=start)
        assert snapshot_answers(tree, held) == before


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(operation, min_size=1, max_size=40),
       fanout=st.integers(min_value=2, max_value=4))
def test_tiered_policy_keeps_bound_and_answers(ops, fanout):
    mgr, tree = build_tree(max_partitions=2, merge_fanout=fanout)
    held = apply_ops(mgr, tree, ops)
    assert len(tree.persisted_partitions) <= 2
    _txn, expected = held[-1]
    got = sorted((h.key[0], h.rid)
                 for h in tree.range_scan(held[-1][0], None, None))
    assert got == sorted(expected.items())
