"""Property tests: record/leaf wire format round-trips losslessly.

Random partitions covering all record types — REGULAR, REPLACEMENT, ANTI,
TOMBSTONE and REGULAR_SET — must survive ``encode_leaf``/``decode_leaf``
exactly, including duplicate-key runs that span leaf-page boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import MVPBTRecord, RecordType
from repro.core.serialization import (decode_leaf, decode_record, encode_leaf,
                                      encode_record)
from repro.errors import StorageError
from repro.storage.recordid import RecordID


U48 = st.integers(min_value=0, max_value=(1 << 48) - 1)
KEYS = st.lists(st.one_of(st.integers(min_value=-(2 ** 40),
                                      max_value=2 ** 40),
                          st.text(max_size=12)),
                min_size=1, max_size=3).map(tuple)
RIDS = st.builds(RecordID,
                 st.integers(min_value=0, max_value=2 ** 32 - 1),
                 st.integers(min_value=0, max_value=2 ** 16 - 1))
SET_ENTRIES = st.lists(st.tuples(U48, RIDS, U48, U48), min_size=0,
                       max_size=5)
PAYLOADS = st.one_of(st.none(), st.text(max_size=30))


@st.composite
def records(draw) -> MVPBTRecord:
    rtype = draw(st.sampled_from(list(RecordType)))
    is_set = rtype is RecordType.REGULAR_SET
    return MVPBTRecord(
        key=draw(KEYS),
        ts=draw(U48),
        seq=draw(U48),
        rtype=rtype,
        # REGULAR_SET carries its identities in set_entries, vid is -1
        vid=-1 if is_set else draw(U48),
        rid_new=draw(st.none() if is_set else st.one_of(st.none(), RIDS)),
        rid_old=draw(st.none() if is_set else st.one_of(st.none(), RIDS)),
        payload=draw(PAYLOADS),
        flags=draw(st.integers(min_value=0, max_value=255)),
        set_entries=draw(SET_ENTRIES) if is_set else [],
    )


@given(records())
def test_single_record_roundtrip(record):
    data = encode_record(record, partition_no=7)
    decoded, end = decode_record(data)
    assert decoded == record
    assert end == len(data)


@given(st.lists(records(), max_size=12))
def test_leaf_roundtrip(partition):
    assert decode_leaf(encode_leaf(partition, partition_no=3)) == partition


@settings(max_examples=50)
@given(key=KEYS,
       dups=st.integers(min_value=2, max_value=8),
       others=st.lists(records(), max_size=6),
       ts0=st.integers(min_value=0, max_value=(1 << 48) - 10),
       split=st.integers(min_value=1, max_value=7))
def test_duplicate_run_spanning_leaf_boundary(key, dups, others, ts0, split):
    """A run of same-key versions chunked across several leaf images
    decodes back to the exact original partition sequence."""
    run = [MVPBTRecord(key=key, ts=ts0 + i, seq=i,
                       rtype=RecordType.REPLACEMENT, vid=i,
                       rid_new=RecordID(i, 0), rid_old=RecordID(i, 1))
           for i in range(dups)]
    partition = others[:len(others) // 2] + run + others[len(others) // 2:]
    cut = min(split, len(partition))
    leaves = [partition[:cut], partition[cut:]]
    decoded = [r for leaf in leaves for r in decode_leaf(encode_leaf(leaf))]
    assert decoded == partition
    # the duplicate run genuinely crosses the boundary for some cut points
    if 0 < cut - len(others) // 2 < dups:
        assert any(r.key == key for r in decode_leaf(encode_leaf(leaves[0])))
        assert any(r.key == key for r in decode_leaf(encode_leaf(leaves[1])))


@given(records(), st.integers(min_value=0, max_value=200))
def test_truncated_record_fails_typed_or_decodes_short(record, cut):
    """Corruption never escapes as an untyped exception.

    Cuts inside the fixed-size header always raise :class:`StorageError`;
    cuts inside a variable-length tail (payload/key bytes) may decode to a
    shorter value — but never to the original record image's full length.
    """
    data = encode_record(record)
    if cut >= len(data):
        return
    fixed_header = 23  # type/flags/pno + ts + seq + vid + presence byte
    try:
        _, end = decode_record(data[:cut])
    except StorageError:
        return
    assert cut >= fixed_header
    assert end <= cut


def test_every_record_type_roundtrips():
    samples = [
        MVPBTRecord(key=(1,), ts=10, seq=0, rtype=RecordType.REGULAR, vid=5,
                    rid_new=RecordID(1, 2)),
        MVPBTRecord(key=("k",), ts=11, seq=1, rtype=RecordType.REPLACEMENT,
                    vid=5, rid_new=RecordID(3, 4), rid_old=RecordID(1, 2),
                    payload="v"),
        MVPBTRecord(key=(1, "a"), ts=12, seq=2, rtype=RecordType.ANTI, vid=5,
                    rid_old=RecordID(3, 4)),
        MVPBTRecord(key=(-9,), ts=13, seq=3, rtype=RecordType.TOMBSTONE,
                    vid=5, rid_old=RecordID(3, 4)),
        MVPBTRecord(key=(2,), ts=14, seq=4, rtype=RecordType.REGULAR_SET,
                    vid=-1,
                    set_entries=[(7, RecordID(5, 6), 14, 4),
                                 (8, RecordID(5, 7), 13, 3)]),
    ]
    assert {r.rtype for r in samples} == set(RecordType)
    assert decode_leaf(encode_leaf(samples)) == samples
