"""Property tests: the shard router is extensionally a single Database.

A :class:`~repro.shard.ShardedDatabase` over N shards must be
indistinguishable from one single-node :class:`~repro.engine.Database`
run through the identical transaction history — the partitioning scheme,
the shard count, rebalances mid-history and snapshots held ACROSS those
rebalances must all be invisible to readers.  Every example replays one
random history (inserts, non-key updates, key-changing cross-shard
moves, deletes, aborts, layout changes, held snapshots) against both
engines and compares:

* every point lookup over the key universe,
* the full merged range scan,
* the same reads through every *held* transaction pair — each also
  checked against the oracle state captured when the snapshot was taken
  (rebalances that happened since must not leak newer or drop older
  versions).

A durable variant recovers the whole sharded topology mid-comparison.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.shard import ShardConfig, ShardedDatabase

KEYS = list(range(20))
TABLE = "t"
INDEX = "ix"

op_st = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(KEYS),
              st.text("abc", min_size=1, max_size=3)),
    st.tuples(st.just("update"), st.sampled_from(KEYS),
              st.text("xyz", min_size=1, max_size=3)),
    st.tuples(st.just("move"), st.sampled_from(KEYS),
              st.sampled_from(KEYS)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
)

step_st = st.fixed_dictionaries({
    "outcome": st.sampled_from(["commit", "commit", "commit", "abort"]),
    "ops": st.lists(op_st, min_size=1, max_size=5),
    "hold": st.booleans(),
    "flush": st.booleans(),
    "rebalance": st.one_of(
        st.none(),
        st.tuples(st.integers(0, 63), st.integers(0, 7),
                  st.sampled_from(KEYS), st.sampled_from(KEYS)),
    ),
})

history_st = st.lists(step_st, min_size=1, max_size=10)


def build_pair(shards: int, partitioning: str, durable: bool = False):
    config = EngineConfig(durability=durable, page_size=2048,
                          extent_pages=8, partition_buffer_bytes=4096,
                          buffer_pool_pages=128)
    cuts = None
    if partitioning == "range":
        cuts = [((len(KEYS) * (i + 1)) // shards,)
                for i in range(shards - 1)]
    router = ShardedDatabase(config, ShardConfig(
        shards=shards, partitioning=partitioning, range_cuts=cuts,
        hash_slots=64))
    oracle = Database(config)
    for db in (router, oracle):
        db.create_table(TABLE, [("id", "int"), ("val", "str")], "heap")
        db.create_index(INDEX, TABLE, ["id"], kind="mvpbt",
                        enable_gc=False)
    return router, oracle


def run_history(router, oracle, history, shards, partitioning):
    live: dict[int, str] = {}
    held = []   # (router_txn, oracle_txn, oracle_state_at_hold)
    for step in history:
        if step["hold"]:
            held.append((router.begin(), oracle.begin(), dict(live)))
        if step["rebalance"] is not None and shards > 1:
            slot, dst_raw, lo, hi = step["rebalance"]
            dst = dst_raw % shards
            if partitioning == "hash":
                router.move_slot(slot % router.shard_config.hash_slots, dst)
            elif lo < hi:
                router.move_range((lo,), (hi,), dst)
        rtxn, otxn = router.begin(), oracle.begin()
        pending = dict(live)
        for op in step["ops"]:
            if op[0] == "insert":
                key, val = op[1], op[2]
                if key in pending:
                    continue
                router.insert(rtxn, TABLE, (key, val))
                oracle.insert(otxn, TABLE, (key, val))
                pending[key] = val
            elif op[0] == "update":
                key, val = op[1], op[2]
                if key not in pending:
                    continue
                router.update_by_key(rtxn, INDEX, (key,), {"val": val})
                oracle.update_by_key(otxn, INDEX, (key,), {"val": val})
                pending[key] = val
            elif op[0] == "move":
                src, dst_key = op[1], op[2]
                if src not in pending or dst_key in pending \
                        or src == dst_key:
                    continue
                router.update_by_key(rtxn, INDEX, (src,), {"id": dst_key})
                oracle.update_by_key(otxn, INDEX, (src,), {"id": dst_key})
                pending[dst_key] = pending.pop(src)
            else:
                key = op[1]
                if key not in pending:
                    continue
                router.delete_by_key(rtxn, INDEX, (key,))
                oracle.delete_by_key(otxn, INDEX, (key,))
                del pending[key]
        if step["outcome"] == "commit":
            rtxn.commit()
            otxn.commit()
            live = pending
        else:
            rtxn.abort()
            otxn.abort()
        if step["flush"]:
            router.flush_all()
            oracle.flush_all()
    return live, held


def assert_same_reads(router, oracle, rtxn, otxn, expect=None,
                      context=""):
    for key in KEYS:
        got_r = sorted(router.select(rtxn, INDEX, (key,)))
        got_o = sorted(oracle.select(otxn, INDEX, (key,)))
        assert got_r == got_o, (
            f"{context}: key {key}: router {got_r} != oracle {got_o}")
        if expect is not None:
            want = [(key, expect[key])] if key in expect else []
            assert got_r == want, (
                f"{context}: key {key}: got {got_r}, want {want}")
    scan_r = sorted(router.range_select(rtxn, INDEX, None, None))
    scan_o = sorted(oracle.range_select(otxn, INDEX, None, None))
    assert scan_r == scan_o, f"{context}: full scans diverge"
    if expect is not None:
        assert scan_r == sorted(expect.items()), (
            f"{context}: scan != oracle state")


def check_equivalence(shards, partitioning, history, durable=False,
                      recover=False):
    router, oracle = build_pair(shards, partitioning, durable)
    live, held = run_history(router, oracle, history, shards,
                             partitioning)
    for rtxn, otxn, state in held:
        assert_same_reads(router, oracle, rtxn, otxn, expect=state,
                          context=f"held snapshot txid={rtxn.id}")
        rtxn.abort()
        otxn.abort()
    rtxn, otxn = router.begin(), oracle.begin()
    assert_same_reads(router, oracle, rtxn, otxn, expect=live,
                      context="final")
    rtxn.abort()
    otxn.abort()
    if recover:
        recovered = ShardedDatabase.recover(router)
        rtxn, otxn = recovered.begin(), oracle.begin()
        assert_same_reads(recovered, oracle, rtxn, otxn, expect=live,
                          context="post-recovery")
        rtxn.abort()
        otxn.abort()


# ----------------------------------------------------------------- tests

pytestmark = pytest.mark.shard


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
@settings(max_examples=20, deadline=None)
@given(history=history_st)
def test_hash_router_equals_oracle(shards, history):
    check_equivalence(shards, "hash", history)


@pytest.mark.parametrize("shards", [2, 4, 8])
@settings(max_examples=20, deadline=None)
@given(history=history_st)
def test_range_router_equals_oracle(shards, history):
    check_equivalence(shards, "range", history)


@settings(max_examples=10, deadline=None)
@given(history=history_st)
def test_durable_router_recovers_to_oracle(history):
    """Recovery of the whole topology lands on the oracle state."""
    check_equivalence(4, "hash", history, durable=True, recover=True)


@settings(max_examples=10, deadline=None)
@given(history=history_st, seed=st.integers(0, 2**16))
def test_snapshot_survives_forced_rebalance(history, seed):
    """Every committed horizon stays exact across one forced full-shuffle
    rebalance (each slot reassigned pseudo-randomly)."""
    shards = 4
    router, oracle = build_pair(shards, "hash")
    live, held = run_history(router, oracle, history, shards, "hash")
    rtxn, otxn = router.begin(), oracle.begin()
    for slot in range(router.shard_config.hash_slots):
        router.move_slot(slot, (slot * 2654435761 + seed) % shards)
    assert_same_reads(router, oracle, rtxn, otxn, expect=live,
                      context="snapshot across forced shuffle")
    for h_rtxn, h_otxn, state in held:
        assert_same_reads(router, oracle, h_rtxn, h_otxn, expect=state,
                          context=f"held txid={h_rtxn.id} across shuffle")
        h_rtxn.abort()
        h_otxn.abort()
    rtxn.abort()
    otxn.abort()
