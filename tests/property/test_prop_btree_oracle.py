"""Property test: B⁺-Tree agrees with a sorted-multimap oracle."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.pool import BufferPool
from repro.index.btree.tree import BPlusTree
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID

op = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 60), st.integers(0, 500)),
    st.tuples(st.just("remove"), st.integers(0, 60), st.integers(0, 500)),
    st.tuples(st.just("search"), st.integers(0, 60), st.just(0)),
    st.tuples(st.just("scan"), st.integers(0, 60), st.integers(0, 60)),
)


def fresh_tree():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    return BPlusTree("p", PageFile("p", device, 1024, 8), BufferPool(512))


@settings(max_examples=60, deadline=None)
@given(st.lists(op, max_size=300))
def test_btree_matches_oracle(ops):
    tree = fresh_tree()   # tiny pages force deep trees and many splits
    oracle: dict[int, list[RecordID]] = defaultdict(list)
    for kind, k, extra in ops:
        if kind == "insert":
            rid = RecordID(0, extra)
            tree.insert_entry((k,), rid)
            oracle[k].append(rid)
        elif kind == "remove":
            rid = RecordID(0, extra)
            expected = rid in oracle[k]
            assert tree.remove_entry((k,), rid) == expected
            if expected:
                oracle[k].remove(rid)
        elif kind == "search":
            assert sorted(tree.search((k,))) == sorted(oracle[k])
        else:
            lo, hi = min(k, extra), max(k, extra)
            got = list(tree.range_scan((lo,), (hi,)))
            expected_n = sum(len(v) for key, v in oracle.items()
                             if lo <= key <= hi)
            assert len(got) == expected_n
            assert [g[0] for g in got] == sorted(g[0] for g in got)
    assert tree.entry_count() == sum(len(v) for v in oracle.values())


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 40), st.text(max_size=8)),
                max_size=200))
def test_upsert_matches_dict(pairs):
    tree = fresh_tree()
    oracle: dict[int, str] = {}
    for k, v in pairs:
        tree.upsert((k,), v)
        oracle[k] = v
    for k, v in oracle.items():
        assert tree.get((k,)) == v
    assert tree.entry_count() == len(oracle)
