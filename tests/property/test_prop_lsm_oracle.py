"""Property test: LSM-Tree agrees with a dict oracle across flushes and
compactions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.pool import BufferPool
from repro.index.lsm.tree import LSMTree
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile

op = st.one_of(
    st.tuples(st.just("put"), st.integers(0, 50), st.text(max_size=6)),
    st.tuples(st.just("delete"), st.integers(0, 50), st.just("")),
    st.tuples(st.just("flush"), st.just(0), st.just("")),
)


def fresh_lsm():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    return LSMTree("l", PageFile("l", device, 1024, 8), BufferPool(512),
                   memtable_bytes=512, l0_component_limit=2,
                   level_base_bytes=2048)


@settings(max_examples=50, deadline=None)
@given(st.lists(op, max_size=250))
def test_lsm_matches_dict(ops):
    tree = fresh_lsm()   # tiny thresholds force frequent compactions
    oracle: dict[int, str] = {}
    for kind, k, v in ops:
        if kind == "put":
            tree.put((k,), v)
            oracle[k] = v
        elif kind == "delete":
            tree.delete((k,))
            oracle.pop(k, None)
        else:
            tree.flush_memtable()
    for k in range(51):
        assert tree.get((k,)) == oracle.get(k), k
    scanned = tree.scan(None, 1000)
    assert scanned == sorted(((k,), v) for k, v in oracle.items())
