"""Property test: the delta-record store reconstructs exactly what a pure
MVCC oracle says, under random histories with aborts and held snapshots."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.pool import BufferPool
from repro.errors import ReproError
from repro.sim.clock import SimClock
from repro.sim.device import SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.table.delta import DeltaTable
from repro.txn.manager import TransactionManager

operation = st.tuples(
    st.sampled_from(["update", "delete", "reinsert"]),
    st.integers(0, 999),     # value tag
    st.booleans(),           # abort?
    st.booleans(),           # take a snapshot before this op?
)


def fresh_table():
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    table = DeltaTable("d", PageFile("d", device, 2048, 8),
                       PageFile("d.pool", device, 2048, 8),
                       BufferPool(256))
    return TransactionManager(clock), table


@settings(max_examples=60, deadline=None)
@given(st.lists(operation, max_size=40))
def test_delta_reconstruction_matches_oracle(ops):
    mgr, table = fresh_table()
    t = mgr.begin()
    _vid, rid = table.insert(t, (7, 0))
    t.commit()
    state: tuple | None = (7, 0)      # committed value, None = deleted
    held = [(mgr.begin(), state)]

    for action, tag, abort, snap_before in ops:
        if snap_before:
            held.append((mgr.begin(), state))
        txn = mgr.begin()
        try:
            if action == "update" and state is not None:
                table.update(txn, rid, (7, tag))
                new_state = (7, tag)
            elif action == "delete" and state is not None:
                table.delete(txn, rid)
                new_state = None
            else:
                txn.abort()
                continue
        except ReproError:
            txn.abort()
            continue
        if abort:
            txn.abort()
            continue
        txn.commit()
        state = new_state

    held.append((mgr.begin(), state))
    for snap_txn, expected in held:
        resolved = table.visible_version(snap_txn, rid)
        if expected is None:
            assert resolved is None
        else:
            assert resolved is not None
            assert resolved[1].data == expected
    for snap_txn, _expected in held:
        snap_txn.commit()
