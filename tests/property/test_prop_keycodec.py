"""Property tests: the key codec is a total order embedding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.keycodec import decode_key, encode_key, encoded_size

# one key element: homogeneous-comparable groups
ints = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
floats = st.floats(allow_nan=False, allow_infinity=True, width=64)
texts = st.text(max_size=20)
blobs = st.binary(max_size=20)


def keys_of(element):
    return st.lists(element, min_size=0, max_size=4).map(tuple)


@given(keys_of(ints))
def test_int_roundtrip(key):
    assert decode_key(encode_key(key)) == key


@given(keys_of(texts))
def test_text_roundtrip(key):
    assert decode_key(encode_key(key)) == key


@given(keys_of(blobs))
def test_bytes_roundtrip(key):
    assert decode_key(encode_key(key)) == key


@given(keys_of(floats))
def test_float_roundtrip(key):
    decoded = decode_key(encode_key(key))
    assert all(a == b or (a != a and b != b)
               for a, b in zip(decoded, key))
    assert len(decoded) == len(key)


@given(keys_of(ints), keys_of(ints))
def test_int_order_preserved(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b)


@given(keys_of(texts), keys_of(texts))
def test_text_order_preserved(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b)


@given(keys_of(blobs), keys_of(blobs))
def test_bytes_order_preserved(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b)


@given(st.lists(st.floats(allow_nan=False, width=64), min_size=1,
                max_size=3).map(tuple),
       st.lists(st.floats(allow_nan=False, width=64), min_size=1,
                max_size=3).map(tuple))
def test_float_order_preserved(a, b):
    # -0.0 and 0.0 compare equal but encode differently; normalise
    a = tuple(0.0 if v == 0 else v for v in a)
    b = tuple(0.0 if v == 0 else v for v in b)
    assert (encode_key(a) < encode_key(b)) == (a < b)


@given(st.lists(st.one_of(ints, texts, blobs, st.none()),
                max_size=5).map(tuple))
def test_size_matches_encoding(key):
    assert encoded_size(key) == len(encode_key(key))
