"""Property tests: bloom filters never produce false negatives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.filters import BloomFilter, PrefixBloomFilter
from repro.storage.keycodec import encode_key


@settings(max_examples=60, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=30), max_size=200),
       st.floats(min_value=0.001, max_value=0.5))
def test_no_false_negatives(items, fpr):
    bf = BloomFilter(max(1, len(items)), fpr)
    for item in items:
        bf.add(item)
    assert all(bf.may_contain(item) for item in items)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100),
                          st.integers(0, 1000)), max_size=150),
       st.integers(min_value=1, max_value=2))
def test_prefix_filter_no_false_negatives(keys, prefix_columns):
    pbf = PrefixBloomFilter(max(1, len(keys)), 0.1, prefix_columns)
    for key in keys:
        pbf.add_key(key)
    for key in keys:
        assert pbf.query_prefix(tuple(key[:prefix_columns]))


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(0, 10 ** 6), min_size=1, max_size=300))
def test_query_counters_consistent(items):
    bf = BloomFilter(len(items), 0.02)
    for item in items:
        bf.add(encode_key((item,)))
    probes = list(items)[:50] + list(range(-50, 0))
    for probe in probes:
        if bf.query(encode_key((probe,))):
            bf.report_pass_outcome(probe in items)
    stats = bf.stats
    assert stats.queries == len(probes)
    assert stats.negatives + stats.positives + stats.false_positives \
        == stats.queries
    assert stats.false_positives == 0 or min(probes) < 0
