"""Property tests: tracer span discipline and histogram accounting.

Random programs of span open/close, point emits and histogram
observations must preserve the structural invariants the golden suite
relies on: spans close in LIFO order with matching depths, sequence
numbers are gapless, histogram count/total always equal the observation
stream, and counters paired with histograms stay in lock-step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import COUNT_BUCKETS, MetricsRegistry, Tracer
from repro.obs.registry import Histogram
from repro.sim.clock import SimClock

#: one random program step: open a span, close the innermost, or emit
STEP = st.sampled_from(["open", "close", "emit"])


@settings(max_examples=80, deadline=None)
@given(st.lists(STEP, max_size=120), st.integers(4, 64))
def test_spans_balanced_and_properly_nested(steps, capacity):
    tracer = Tracer(SimClock(), capacity=capacity)
    stack = []
    for step in steps:
        if step == "open":
            span = tracer.span(f"s{len(stack)}")
            span.__enter__()
            stack.append(span)
        elif step == "close" and stack:
            stack.pop().__exit__(None, None, None)
        elif step == "emit":
            tracer.emit("p")
    while stack:
        stack.pop().__exit__(None, None, None)
    assert tracer.open_spans == 0

    events = tracer.events()
    # gapless, increasing sequence over the retained window
    seqs = [e["i"] for e in events]
    assert seqs == sorted(seqs)
    assert all(b - a == 1 for a, b in zip(seqs, seqs[1:]))
    assert tracer.dropped == max(0, (seqs[-1] + 1) - len(events) if seqs
                                 else 0)

    # every B/E pair retained in full must agree on depth; ends must
    # close in LIFO order (verified by replaying the window's stack)
    begins = {e["span"]: e for e in events if e["kind"] == "B"}
    replay = []
    for event in events:
        if event["kind"] == "B":
            replay.append(event["span"])
        elif event["kind"] == "E":
            if event["span"] in begins:
                assert begins[event["span"]]["depth"] == event["depth"]
            if replay and replay[-1] == event["span"]:
                replay.pop()
            else:
                # its begin fell out of the ring buffer window
                assert event["span"] not in replay


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), max_size=200))
def test_histogram_totals_match_observations(values):
    h = Histogram("h", COUNT_BUCKETS)
    for value in values:
        h.observe(value)
    assert h.count == len(values)
    assert sum(h.counts) == len(values)
    assert h.total == sum(values)
    # bucket placement: everything <= bounds[i] and > bounds[i-1]
    for i, bound in enumerate(h.bounds):
        lower = h.bounds[i - 1] if i else float("-inf")
        assert h.counts[i] == sum(1 for v in values if lower < v <= bound)
    assert h.counts[-1] == sum(1 for v in values if v > h.bounds[-1])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 500), max_size=100))
def test_counter_histogram_lockstep(batches):
    """The cursor idiom: each operation incs a counter once and observes
    its cardinality once — histogram.count must equal the counter."""
    reg = MetricsRegistry()
    ops = reg.counter("op.count")
    sizes = reg.histogram("op.hits", COUNT_BUCKETS)
    for n in batches:
        ops.inc()
        sizes.observe(float(n))
    assert sizes.count == reg.counter_value("op.count")
    assert sizes.total == float(sum(batches))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(0.0, 10.0, allow_nan=False),
                          st.booleans()), max_size=60))
def test_span_durations_track_simulated_clock(program):
    """A span's exported duration equals the simulated time advanced
    while it was open, for arbitrary open/advance interleavings."""
    clock = SimClock()
    tracer = Tracer(clock, capacity=1 << 12)
    for advance, nest in program:
        with tracer.span("outer"):
            clock.advance(advance)
            if nest:
                with tracer.span("inner"):
                    clock.advance(advance)
    events = tracer.events()
    t_begin = {e["span"]: e["t"] for e in events if e["kind"] == "B"}
    for event in events:
        if event["kind"] == "E":
            assert event["dur"] == event["t"] - t_begin[event["span"]]
