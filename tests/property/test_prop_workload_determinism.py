"""Seeded determinism of the workload runners (DESIGN.md §18.5).

The differential oracle only works if a (config, seed) pair names ONE
workload: the same operation stream, byte for byte, on every run and on
every backend.  These properties pin that contract:

* running the same seeded workload twice produces identical op logs,
  identical result counters and identical committed final states;
* running it on a different backend (single-node vs. a 2-shard cluster)
  produces the identical op log — the runner's RNG stream must not
  depend on which backend executes it;
* changing the seed changes the op stream (the log is not a constant).
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.shard import ShardConfig, ShardedDatabase
from repro.workloads import (WORKLOADS, DatabaseBackend, ShardedBackend,
                             TPCCConfig, TPCCRunner, YCSBRunner)

pytestmark = [pytest.mark.workload]

YCSB_TABLES = ("usertable",)
TPCC_TABLES = ("warehouse", "district", "customer", "item", "stock",
               "orders", "new_order", "order_line", "history")


def make_backend(kind: str):
    if kind == "database":
        return DatabaseBackend(Database(EngineConfig()))
    return ShardedBackend(
        ShardedDatabase(EngineConfig(), ShardConfig(shards=2)))


def run_ycsb(kind: str, seed: int, workload: str = "A"):
    config = WORKLOADS[workload].scaled(seed=seed, record_count=60,
                                        operation_count=80)
    with make_backend(kind) as backend:
        runner = YCSBRunner(backend, config, workload, record_ops=True)
        runner.load()
        result = runner.run()
        return (list(runner.op_log), (result.counts, result.not_found),
                backend.dump_table("usertable"))


def run_tpcc(kind: str, seed: int, txns: int = 60):
    config = TPCCConfig(warehouses=2, districts_per_warehouse=2,
                        customers_per_district=4, items=20,
                        initial_orders_per_district=3, seed=seed)
    backend = make_backend(kind)
    try:
        runner = TPCCRunner(backend, config, record_ops=True)
        runner.load()
        result = runner.run(txns)
        dumps = {t: backend.dump_table(t) for t in TPCC_TABLES}
        return (list(runner.op_log),
                (result.committed, result.aborted, result.by_type),
                dumps)
    finally:
        backend.close()


# -------------------------------------------------------------------- YCSB

@pytest.mark.parametrize("seed", [3, 17])
@pytest.mark.parametrize("workload", ["A", "E"])
def test_ycsb_repeat_runs_identical(seed: int, workload: str) -> None:
    first = run_ycsb("database", seed, workload)
    second = run_ycsb("database", seed, workload)
    assert first[0] == second[0], "op stream differs between runs"
    assert first[1] == second[1]
    assert first[2] == second[2]


@pytest.mark.parametrize("seed", [3, 17])
def test_ycsb_op_stream_backend_independent(seed: int) -> None:
    single = run_ycsb("database", seed)
    sharded = run_ycsb("sharded", seed)
    assert single[0] == sharded[0], (
        "the RNG stream leaked backend-dependent state")
    assert single[1] == sharded[1]
    assert single[2] == sharded[2]


def test_ycsb_seed_changes_stream() -> None:
    assert run_ycsb("database", 3)[0] != run_ycsb("database", 4)[0]


# ------------------------------------------------------------------- TPC-C

@pytest.mark.parametrize("seed", [5, 29])
def test_tpcc_repeat_runs_identical(seed: int) -> None:
    first = run_tpcc("database", seed)
    second = run_tpcc("database", seed)
    assert first[0] == second[0], "op stream differs between runs"
    assert first[1] == second[1]
    assert first[2] == second[2]


@pytest.mark.parametrize("seed", [5, 29])
def test_tpcc_op_stream_backend_independent(seed: int) -> None:
    single = run_tpcc("database", seed)
    sharded = run_tpcc("sharded", seed)
    assert single[0] == sharded[0], (
        "the RNG stream leaked backend-dependent state")
    assert single[1] == sharded[1]
    assert single[2] == sharded[2]


def test_tpcc_seed_changes_stream() -> None:
    assert run_tpcc("database", 5, txns=30)[0] \
        != run_tpcc("database", 6, txns=30)[0]


def test_tpcc_op_log_length_matches_attempts() -> None:
    log, (committed, aborted, _by_type), _ = run_tpcc("database", 5)
    assert len(log) == committed + aborted == 60
