"""Property tests: the batched scan pipeline equals the per-record path.

``MVPBT.batch_scan`` selects between two complete read-path
implementations — the page-batched merge with zone-map pruning and batch
visibility, and the per-record cursor cascade.  They must be extensionally
identical: under arbitrary interleavings of inserts, updates, deletes,
evictions and held snapshots, every range scan (any bounds, any
inclusivity) must return byte-identical ``SearchHit`` lists on both paths
— across all three table storage models and on databases recovered from a
random crash point.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.partition_buffer import PartitionBuffer
from repro.buffer.pool import BufferPool
from repro.core.tree import MVPBT
from repro.sim.clock import SimClock
from repro.sim.device import FaultPlan, SimulatedDevice
from repro.sim.profiles import UNIT_TEST_PROFILE
from repro.storage.pagefile import PageFile
from repro.storage.recordid import RecordID
from repro.txn.manager import TransactionManager

from tests.crash.harness import recover_and_check, run_workload

KEYS = list(range(14))

operation = st.tuples(
    st.sampled_from(KEYS),
    st.sampled_from(["insert", "update", "delete", "evict"]),
    st.booleans(),                       # hold a snapshot before this op?
)

bounds = st.tuples(
    st.one_of(st.none(), st.sampled_from(KEYS)),
    st.one_of(st.none(), st.sampled_from(KEYS)),
    st.booleans(),                       # lo inclusive?
    st.booleans(),                       # hi inclusive?
)


def build_tree(**opts):
    clock = SimClock()
    device = SimulatedDevice(UNIT_TEST_PROFILE, clock)
    mgr = TransactionManager(clock)
    tree = MVPBT("bs", PageFile("bs", device, 2048, 8), BufferPool(256),
                 PartitionBuffer(1 << 22), mgr, **opts)
    return mgr, tree


def apply_ops(mgr, tree, ops):
    live: dict[int, tuple[RecordID, int]] = {}
    next_vid = 1
    next_rid = 0
    held = []
    for key, action, snap_before in ops:
        if snap_before:
            held.append(mgr.begin())
        txn = mgr.begin()
        if action == "insert" and key not in live:
            next_rid += 1
            rid = RecordID(0, next_rid)
            tree.insert(txn, (key,), rid, vid=next_vid)
            live[key] = (rid, next_vid)
            next_vid += 1
        elif action == "update" and key in live:
            old_rid, vid = live[key]
            next_rid += 1
            rid = RecordID(0, next_rid)
            tree.update_nonkey(txn, (key,), rid, old_rid, vid)
            live[key] = (rid, vid)
        elif action == "delete" and key in live:
            old_rid, vid = live[key]
            tree.delete(txn, (key,), old_rid, vid)
            del live[key]
        elif action == "evict":
            tree.evict_partition()
        txn.commit()
    held.append(mgr.begin())
    return held


def both_paths(tree, txn, lo, hi, lo_incl, hi_incl):
    """(batched hits, per-record hits) for one scan on one tree."""
    tree.batch_scan = True
    batched = tree.range_scan(txn, lo, hi,
                              lo_incl=lo_incl, hi_incl=hi_incl)
    tree.batch_scan = False
    try:
        record = tree.range_scan(txn, lo, hi,
                                 lo_incl=lo_incl, hi_incl=hi_incl)
    finally:
        tree.batch_scan = True
    return batched, record


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(operation, min_size=1, max_size=40),
       scan=bounds)
def test_batch_equals_record_path_under_arbitrary_histories(ops, scan):
    lo, hi, lo_incl, hi_incl = scan
    mgr, tree = build_tree()
    held = apply_ops(mgr, tree, ops)
    for txn in held:
        batched, record = both_paths(
            tree, txn,
            (lo,) if lo is not None else None,
            (hi,) if hi is not None else None, lo_incl, hi_incl)
        assert batched == record


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(operation, min_size=5, max_size=40))
def test_batch_equals_record_path_with_reconciled_sets(ops):
    """Reconciliation produces REGULAR_SET records whose batch emission
    (set spreading, per-entry anti probes) must match the cursor's."""
    mgr, tree = build_tree(reconcile=True)
    held = apply_ops(mgr, tree, ops)
    tree.merge_partitions()
    for txn in held:
        batched, record = both_paths(tree, txn, None, None, True, True)
        assert batched == record


@settings(max_examples=20, deadline=None)
@given(storage=st.sampled_from(["heap", "sias", "delta"]),
       scan=bounds)
def test_batch_equals_record_path_across_storage_models(storage, scan):
    """The scripted crash-harness workload (no fault) through the full
    engine, on every table storage model."""
    lo, hi, lo_incl, hi_incl = scan
    run = run_workload(storage=storage)
    assert not run.crashed
    tree = run.db.catalog.index("ix").mvpbt
    txn = run.db.begin()
    batched, record = both_paths(
        tree, txn,
        (lo,) if lo is not None else None,
        (hi,) if hi is not None else None, lo_incl, hi_incl)
    assert batched == record
    txn.commit()


@settings(max_examples=15, deadline=None)
@given(fail_at=st.integers(min_value=1, max_value=400),
       storage=st.sampled_from(["heap", "sias", "delta"]))
def test_batch_equals_record_path_after_crash_recovery(fail_at, storage):
    """Kill the device at a random I/O index, recover, then scan the
    recovered tree on both read paths: restored partitions (zone maps
    re-attached from the manifest) must prune without changing answers."""
    run = run_workload(FaultPlan(fail_at=fail_at), storage=storage)
    if not run.crashed:
        return      # workload finished before the fault index
    recovered = recover_and_check(run, context=f"fail_at={fail_at}")
    tree = recovered.catalog.index("ix").mvpbt
    txn = recovered.begin()
    for lo, hi in ((None, None), ((10,), (45,)), ((60,), (61,))):
        batched, record = both_paths(tree, txn, lo, hi, True, True)
        assert batched == record
    txn.commit()
