"""Property test: MV-PBT's index-only visibility check is equivalent to the
base-table visibility check, under random MVCC histories.

One random history of single-statement transactions (inserts / updates /
key-updates / deletes, some aborted) runs against four engine variants:

* MV-PBT with GC enabled (small partition buffer → frequent evictions),
* MV-PBT with GC disabled,
* version-oblivious PBT (base-table visibility),
* B⁺-Tree (base-table visibility).

Snapshots are opened at random points and held to the end; every variant
must answer every held snapshot exactly like the pure-Python MVCC oracle.
This simultaneously checks Algorithm 3, record ordering (§4.3), partition
eviction and GC safety (GC must never change any snapshot's answer).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import ReproError

KEYS = list(range(12))

operation = st.tuples(
    st.sampled_from(KEYS),                    # key operated on
    st.sampled_from(["insert", "update", "move", "delete"]),
    st.sampled_from(KEYS),                    # target key for "move"
    st.integers(0, 999),                      # value tag
    st.booleans(),                            # abort?
)

history = st.tuples(
    st.lists(operation, min_size=1, max_size=60),
    st.sets(st.integers(0, 59), max_size=5),  # snapshot positions
)

VARIANTS = [
    ("sias", "mvpbt", {"enable_gc": True}),
    ("sias", "mvpbt", {"enable_gc": False}),
    ("sias", "pbt", {}),
    ("sias", "btree", {}),
    ("delta", "mvpbt", {}),
    ("delta", "btree", {}),
]


def build_db(storage, kind, opts):
    db = Database(EngineConfig(buffer_pool_pages=96,
                               partition_buffer_bytes=2 * 8192))
    db.create_table("r", [("a", "int"), ("b", "int")], storage=storage)
    db.create_index("ix", "r", ["a"], kind=kind, **opts)
    return db


def apply_history(db, ops, snapshot_points):
    """Runs the history; returns [(snapshot_txn, expected_state), ...]."""
    state: dict[int, list[int]] = {}      # key -> list of value tags
    held = []
    for pos, (key, action, target, tag, abort) in enumerate(ops):
        if pos in snapshot_points:
            held.append((db.begin(), {k: list(v) for k, v in state.items()
                                      if v}))
        txn = db.begin()
        try:
            if action == "insert":
                db.insert(txn, "r", (key, tag))
                effect = ("insert", key, tag, None)
            elif action == "update":
                n = db.update_by_key(txn, "ix", (key,), {"b": tag})
                effect = ("update", key, tag, n)
            elif action == "move":
                n = db.update_by_key(txn, "ix", (key,), {"a": target})
                effect = ("move", key, target, n)
            else:
                n = db.delete_by_key(txn, "ix", (key,))
                effect = ("delete", key, None, n)
        except ReproError:
            txn.abort()
            continue
        if abort:
            txn.abort()
            continue
        txn.commit()
        kind, key, arg, n = effect
        if kind == "insert":
            state.setdefault(key, []).append(arg)
        elif kind == "update" and n:
            # all rows at `key` get tag `arg`
            state[key] = [arg] * len(state[key])
        elif kind == "move" and n:
            moved = state.pop(key)
            state.setdefault(arg, []).extend(moved)
        elif kind == "delete" and n:
            state.pop(key, None)
    final = (db.begin(), {k: list(v) for k, v in state.items() if v})
    held.append(final)
    return held


def rows_of(expected_state):
    rows = []
    for key, tags in expected_state.items():
        rows.extend((key, tag) for tag in tags)
    return sorted(rows)


@settings(max_examples=25, deadline=None)
@given(history)
def test_all_variants_match_oracle(hist):
    ops, snapshot_points = hist
    for storage, kind, opts in VARIANTS:
        db = build_db(storage, kind, opts)
        held = apply_history(db, ops, snapshot_points)
        for snap_txn, expected in held:
            got = sorted(db.range_select(snap_txn, "ix", None, None))
            assert got == rows_of(expected), (storage, kind, opts)
            # spot-check point lookups too
            for key in (0, 5, 11):
                expected_rows = sorted(
                    (key, tag) for tag in expected.get(key, []))
                assert sorted(db.select(snap_txn, "ix", (key,))) \
                    == expected_rows, (storage, kind, opts, key)
        for snap_txn, _expected in held:
            snap_txn.commit()
